"""Hand-written C^3 stub for the timer manager component.

Tracks the period of each timer descriptor so recovery re-allocates it
with the original cadence; a thread blocked on a faulted timer redoes its
``timer_block`` after the eager wakeup.
"""

from __future__ import annotations

from repro.c3.base import C3ClientStubBase
from repro.composite.kernel import FAULT
from repro.errors import BlockThread, InvalidDescriptor


class TimerC3ClientStub(C3ClientStubBase):
    SERVICE = "timer"

    # ------------------------------------------------------------------
    def c3_timer_alloc(self, kernel, thread, compid, period):
        while True:
            ret = kernel.raw_invoke(
                thread, self.server, "timer_alloc", (compid, period)
            )
            if ret is FAULT:
                self.fault_update(kernel, thread)
                self.stats["redos"] += 1
                continue
            if isinstance(ret, int) and ret < 0:
                return ret
            entry = {
                "sid": ret,
                "period": period,
                "owner": thread.tid,
                "epoch": self.epoch(kernel),
            }
            self.descs[ret] = entry
            self.track(kernel, thread, entry, stores=3)
            return ret

    # ------------------------------------------------------------------
    def c3_timer_block(self, kernel, thread, compid, tmid):
        entry = self.descs.get(tmid)
        retries = 0
        while True:
            if entry is not None:
                self._recover(kernel, thread, tmid)
            sid = entry["sid"] if entry is not None else tmid
            try:
                ret = kernel.raw_invoke(
                    thread, self.server, "timer_block", (compid, sid)
                )
            except BlockThread:
                raise
            except InvalidDescriptor:
                if entry is None or retries >= 3:
                    raise
                retries += 1
                entry["epoch"] = -1
                continue
            if ret is FAULT:
                self.fault_update(kernel, thread)
                self.stats["redos"] += 1
                continue
            if entry is not None:
                self.track(kernel, thread, entry)
            return ret

    def post_unblock(self, kernel, thread, fn, args, value):
        if fn == "timer_block":
            entry = self.descs.get(args[1])
            if entry is not None:
                self.track(kernel, thread, entry)
        return value

    # ------------------------------------------------------------------
    def c3_timer_expire(self, kernel, thread, compid, tmid):
        entry = self.descs.get(tmid)
        retries = 0
        while True:
            if entry is not None:
                self._recover(kernel, thread, tmid)
            sid = entry["sid"] if entry is not None else tmid
            try:
                ret = kernel.raw_invoke(
                    thread, self.server, "timer_expire", (compid, sid)
                )
            except InvalidDescriptor:
                if entry is None or retries >= 3:
                    raise
                retries += 1
                entry["epoch"] = -1
                continue
            if ret is FAULT:
                self.fault_update(kernel, thread)
                self.stats["redos"] += 1
                continue
            if entry is not None:
                self.track(kernel, thread, entry)
            return ret

    # ------------------------------------------------------------------
    def c3_timer_free(self, kernel, thread, compid, tmid):
        entry = self.descs.get(tmid)
        retries = 0
        while True:
            if entry is not None:
                self._recover(kernel, thread, tmid)
            sid = entry["sid"] if entry is not None else tmid
            try:
                ret = kernel.raw_invoke(
                    thread, self.server, "timer_free", (compid, sid)
                )
            except InvalidDescriptor:
                if entry is None or retries >= 3:
                    raise
                retries += 1
                entry["epoch"] = -1
                continue
            if ret is FAULT:
                self.fault_update(kernel, thread)
                self.stats["redos"] += 1
                continue
            self.descs.pop(tmid, None)
            self.track(kernel, thread, None)
            return ret

    # ------------------------------------------------------------------
    def _recover(self, kernel, thread, cdesc) -> bool:
        entry = self.descs.get(cdesc)
        if entry is None:
            return False
        current = self.epoch(kernel)
        if entry["epoch"] == current:
            return False
        entry["epoch"] = current
        start = kernel.clock.now
        owner = self.impersonate(thread, entry["owner"])
        entry["sid"] = self.replay(
            kernel, owner, "timer_alloc", (self.client, entry["period"])
        )
        self.record_recovery(kernel, start)
        return True
