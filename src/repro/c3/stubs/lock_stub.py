"""Hand-written C^3 stub for the lock component.

Tracks, per lock descriptor: the current server id, whether the lock is
available or taken, and the owning thread.  Recovery re-allocates the lock
and, if it was taken, re-takes it on behalf of the tracked owner.
"""

from __future__ import annotations

from repro.c3.base import C3ClientStubBase
from repro.composite.kernel import FAULT
from repro.errors import BlockThread, InvalidDescriptor


class LockC3ClientStub(C3ClientStubBase):
    SERVICE = "lock"

    # ------------------------------------------------------------------
    def c3_lock_alloc(self, kernel, thread, compid):
        while True:
            ret = kernel.raw_invoke(thread, self.server, "lock_alloc", (compid,))
            if ret is FAULT:
                self.fault_update(kernel, thread)
                self.stats["redos"] += 1
                continue
            entry = {
                "sid": ret,
                "state": "available",
                "owner": thread.tid,
                "epoch": self.epoch(kernel),
            }
            self.descs[ret] = entry
            self.track(kernel, thread, entry, stores=3)
            return ret

    # ------------------------------------------------------------------
    def c3_lock_take(self, kernel, thread, compid, lock_id):
        entry = self.descs.get(lock_id)
        retries = 0
        while True:
            if entry is not None:
                self._recover(kernel, thread, lock_id)
            sid = entry["sid"] if entry is not None else lock_id
            try:
                ret = kernel.raw_invoke(
                    thread, self.server, "lock_take", (compid, sid)
                )
            except BlockThread:
                raise
            except InvalidDescriptor:
                if entry is None or retries >= 3:
                    raise
                retries += 1
                entry["epoch"] = -1
                continue
            if ret is FAULT:
                self.fault_update(kernel, thread)
                self.stats["redos"] += 1
                continue
            if isinstance(ret, int) and ret >= 0 and entry is not None:
                entry["state"] = "taken"
                entry["owner"] = thread.tid
                self.track(kernel, thread, entry)
            return ret

    def post_unblock(self, kernel, thread, fn, args, value):
        if fn == "lock_take":
            entry = self.descs.get(args[1])
            if entry is not None:
                entry["state"] = "taken"
                entry["owner"] = thread.tid
                self.track(kernel, thread, entry)
        return value

    # ------------------------------------------------------------------
    def c3_lock_release(self, kernel, thread, compid, lock_id):
        entry = self.descs.get(lock_id)
        retries = 0
        while True:
            if entry is not None:
                self._recover(kernel, thread, lock_id)
            sid = entry["sid"] if entry is not None else lock_id
            try:
                ret = kernel.raw_invoke(
                    thread, self.server, "lock_release", (compid, sid)
                )
            except InvalidDescriptor:
                if entry is None or retries >= 3:
                    raise
                retries += 1
                entry["epoch"] = -1
                continue
            if ret is FAULT:
                self.fault_update(kernel, thread)
                self.stats["redos"] += 1
                continue
            if isinstance(ret, int) and ret >= 0 and entry is not None:
                entry["state"] = "available"
                self.track(kernel, thread, entry)
            return ret

    # ------------------------------------------------------------------
    def c3_lock_free(self, kernel, thread, compid, lock_id):
        entry = self.descs.get(lock_id)
        retries = 0
        while True:
            if entry is not None:
                self._recover(kernel, thread, lock_id)
            sid = entry["sid"] if entry is not None else lock_id
            try:
                ret = kernel.raw_invoke(
                    thread, self.server, "lock_free", (compid, sid)
                )
            except InvalidDescriptor:
                if entry is None or retries >= 3:
                    raise
                retries += 1
                entry["epoch"] = -1
                continue
            if ret is FAULT:
                self.fault_update(kernel, thread)
                self.stats["redos"] += 1
                continue
            self.descs.pop(lock_id, None)
            self.track(kernel, thread, None)
            return ret

    # ------------------------------------------------------------------
    def _recover(self, kernel, thread, cdesc) -> bool:
        entry = self.descs.get(cdesc)
        if entry is None:
            return False
        current = self.epoch(kernel)
        if entry["epoch"] == current:
            return False
        entry["epoch"] = current
        start = kernel.clock.now
        # Walk: re-allocate, then re-take if the lock was held.
        new_sid = self.replay(kernel, thread, "lock_alloc", (self.client,))
        entry["sid"] = new_sid
        if entry["state"] == "taken":
            owner = self.impersonate(thread, entry["owner"])
            self.replay(
                kernel, owner, "lock_take", (self.client, new_sid)
            )
        self.record_recovery(kernel, start)
        return True
