"""C^3: hand-written interface-driven recovery stubs (the baseline).

This package is the reproduction of the paper's comparison system
(Section II-C): the same recovery *mechanisms* as SuperGlue, but with the
interface stubs written by hand, per service, in an ad-hoc style — exactly
the error-prone, per-interface code SuperGlue's IDL compiler replaces.
Its line counts are the "C^3" bars of Fig. 6(c).
"""

from typing import Callable, Dict, Optional, Tuple

from repro.c3.stubs.event_stub import EventC3ClientStub, EventC3ServerStub
from repro.c3.stubs.lock_stub import LockC3ClientStub
from repro.c3.stubs.mm_stub import MMC3ClientStub
from repro.c3.stubs.ramfs_stub import RamFSC3ClientStub
from repro.c3.stubs.sched_stub import SchedC3ClientStub
from repro.c3.stubs.timer_stub import TimerC3ClientStub

_CLIENT_STUBS = {
    "sched": SchedC3ClientStub,
    "mm": MMC3ClientStub,
    "ramfs": RamFSC3ClientStub,
    "lock": LockC3ClientStub,
    "event": EventC3ClientStub,
    "timer": TimerC3ClientStub,
}

_SERVER_STUBS = {
    "event": EventC3ServerStub,
}


def make_c3_stubs() -> Tuple[Dict, Callable, Callable]:
    """Factories used by :func:`repro.system.build_system` in c3 mode.

    Returns ``(irs, client_factory, server_factory)``.  The interface IRs
    are reused from the compiled SuperGlue specifications purely for the
    recovery manager's bookkeeping — the stubs themselves never consult
    them (they are hand-written).
    """
    from repro.system import compile_all_interfaces

    compiled = compile_all_interfaces()
    irs = {name: c.ir for name, c in compiled.items()}

    def client_factory(service: str, client: str, ir):
        return _CLIENT_STUBS[service](client, service)

    def server_factory(service: str, component, ir) -> Optional[object]:
        cls = _SERVER_STUBS.get(service)
        return cls(component) if cls is not None else None

    return irs, client_factory, server_factory
