"""Common scaffolding for the hand-written C^3 stubs.

Kept deliberately thin: C^3 gave developers the *mechanisms* (micro-reboot,
fault epochs, tracking cost accounting, thread impersonation) but no model
of what to do with them — every stub re-implements its own descriptor
bookkeeping and recovery sequences by hand (Section II-F: "C^3 stubs are
manually written, and are complex and error prone").
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.composite.kernel import FAULT
from repro.composite.machine import EAX, EBX, ECX, ESI, Trace
from repro.core.runtime.stubs import TidProxy
from repro.errors import RecoveryError

#: Magic word guarding client-side tracking records (C^3 flavour).
C3_TRACK_MAGIC = 0xC3C3C3C3

#: Cost of the fault-epoch resynchronisation on the redo path.
C3_FAULT_UPDATE_CYCLES = 140

#: Marshalling-loop iterations per tracked invocation.  Hand-tuned C^3
#: stubs marshal slightly less per op than the generated code (Fig. 6a
#: shows both in the same band, C^3 marginally cheaper).
C3_TRACK_MARSHAL_ITERS = 102


class C3ClientStubBase:
    """Hand-written client stub base: epoch sync + tracking-cost traces."""

    SERVICE = ""

    def __init__(self, client: str, server: str):
        self.client = client
        self.server = server
        #: cdesc -> per-service dict (each stub defines its own layout).
        self.descs: Dict[object, dict] = {}
        self.seen_epoch = 0
        self.stats = {
            "tracked_ops": 0,
            "recoveries": 0,
            "recovery_cycles": 0,
            "fault_updates": 0,
            "redos": 0,
        }

    def pool_pristine(self) -> bool:
        """All per-run state at sealed values (mirrors the generated
        stubs' predicate; see ``ClientStubRuntime.pool_pristine``)."""
        return (
            not self.descs
            and self.seen_epoch == 0
            and not any(self.stats.values())
        )

    def pool_restore(self) -> None:
        if self.pool_pristine():
            return
        self.descs = {}
        self.seen_epoch = 0
        for key in self.stats:
            self.stats[key] = 0

    # -- kernel contract -----------------------------------------------------
    def invoke(self, kernel, thread, fn: str, args: Tuple):
        # SWIFI IDL-boundary fuzzing interposes on C^3 stubs too: the
        # fault class targets the interface surface, not a stub flavour.
        swifi = kernel.swifi
        if swifi is not None:
            args = swifi.filter_idl_args(self.server, fn, args)
        method = getattr(self, f"c3_{fn}", None)
        if method is None:
            result = kernel.raw_invoke(thread, self.server, fn, args)
            if result is FAULT:
                self.fault_update(kernel, thread)
                return self.invoke(kernel, thread, fn, args)
        else:
            result = method(kernel, thread, *args)
        if swifi is not None:
            result = swifi.filter_idl_ret(self.server, fn, result)
        return result

    def post_unblock(self, kernel, thread, fn: str, args: Tuple, value):
        """Per-service completion tracking for blocking calls."""
        return value

    def recover_all(self, kernel, thread) -> int:
        """Eager recovery over all descriptors (T0-style ablation)."""
        recovered = 0
        for cdesc in list(self.descs):
            if self._recover(kernel, thread, cdesc):
                recovered += 1
        return recovered

    # -- mechanisms ------------------------------------------------------------
    def epoch(self, kernel) -> int:
        return kernel.component(self.server).reboot_epoch

    def fault_update(self, kernel, thread) -> None:
        self.stats["fault_updates"] += 1
        kernel.charge(thread, C3_FAULT_UPDATE_CYCLES)
        self.seen_epoch = self.epoch(kernel)

    def _recover(self, kernel, thread, cdesc) -> bool:
        """Subclasses implement the hand-written recovery sequence."""
        raise NotImplementedError

    def impersonate(self, thread, tid: int):
        """Replay helper: act for the descriptor's original principal."""
        return TidProxy(thread, tid) if tid != thread.tid else thread

    def record_recovery(self, kernel, start_cycles: int) -> None:
        self.stats["recoveries"] += 1
        delta = kernel.clock.now - start_cycles
        self.stats["recovery_cycles"] += delta
        if kernel.recovery_manager is not None:
            kernel.recovery_manager.record_descriptor_recovery(
                self.server, delta
            )

    def replay(self, kernel, thread, fn: str, args: Tuple):
        """One recovery replay invocation with a single redo on re-fault."""
        result = kernel.raw_invoke(thread, self.server, fn, args)
        if result is FAULT:
            self.fault_update(kernel, thread)
            result = kernel.raw_invoke(thread, self.server, fn, args)
            if result is FAULT:
                raise RecoveryError(
                    f"repeated fault replaying {fn} on {self.server}"
                )
        return result

    # -- tracking cost ----------------------------------------------------------
    def track(self, kernel, thread, entry: dict = None, stores: int = 2):
        """Execute the C^3 descriptor-tracking micro-ops in client memory.

        C^3's hand-tuned tracking is marginally leaner than the generated
        code (one fewer store on average) — the Fig. 6(a) comparison shows
        both as similar.
        """
        self.stats["tracked_ops"] += 1
        image = kernel.component(self.client).image
        trace = Trace("c3_track").prologue()
        if entry is not None:
            addr = entry.get("_track_addr")
            if addr is None:
                addr = image.alloc_record(C3_TRACK_MAGIC, 4)
                entry["_track_addr"] = addr
            trace.li(EAX, addr)
            trace.chk(EAX, 0, C3_TRACK_MAGIC)
            trace.ld(EBX, EAX, 1)
            for off in range(max(stores - 1, 1)):
                trace.li(ECX, (self.seen_epoch + off) & 0xFFFFFFFF)
                trace.st(ECX, EAX, 1 + (off % 4))
        else:
            trace.li(EBX, self.seen_epoch)
        # Hand-rolled meta-data marshalling into the tracking structure.
        trace.li(ESI, C3_TRACK_MARSHAL_ITERS)
        trace.loop(ESI, 3)
        trace.li(EAX, 0)
        trace.epilogue(EAX)
        kernel.component(self.client).execute(thread, trace)


class C3ServerStubBase:
    """Hand-written server-side stub base."""

    def __init__(self, component, storage: str = "storage"):
        self.component = component
        self.storage_name = storage
        self.stats = {"einval_recoveries": 0, "replays": 0}

    def pool_pristine(self) -> bool:
        return not any(self.stats.values())

    def pool_restore(self) -> None:
        if not self.pool_pristine():
            for key in self.stats:
                self.stats[key] = 0

    def dispatch(self, kernel, thread, fn: str, args: Tuple):
        return self.component.dispatch(fn, thread, args)
