"""The descriptor-resource model (Section III-A, Equation 1).

``DR = (B_r, D_r, G_dr, P_dr, C_dr, Y_dr, D_dr)``

SuperGlue decouples *resources* (what a server manages) from *descriptors*
(the names clients hold for them).  The seven model variables parameterise
which recovery mechanisms a service needs (Section III-C): blocking forces
eager wakeup (T0), global descriptors force storage + upcalls (G0/U0),
resource data forces storage introspection (G1), and parent/child
dependencies force recovery ordering (D0/D1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from repro.errors import IDLValidationError


class ParentKind(enum.Enum):
    """``P_dr``: inter-descriptor dependency shape."""

    SOLO = "solo"
    PARENT = "parent"
    XCPARENT = "xcparent"

    @classmethod
    def from_str(cls, text: str) -> "ParentKind":
        try:
            return cls(text.strip().lower())
        except ValueError:
            raise IDLValidationError(
                f"desc_has_parent must be solo|parent|xcparent, got {text!r}"
            ) from None


@dataclass
class DescriptorResourceModel:
    """One service's instance of the DR model.

    Attributes map one-to-one to the paper's variables:

    * ``blocking`` — ``B_r``: threads can block inside the server.
    * ``resource_has_data`` — ``D_r``: the resource carries bulk data that
      must be redundantly stored (G1), e.g. file contents.
    * ``desc_global`` — ``G_dr``: the descriptor namespace is shared across
      client components (G0/U0).
    * ``parent`` — ``P_dr``.
    * ``close_children`` — ``C_dr``: closing a descriptor closes its
      children (recursive revocation; D0).
    * ``close_removes_dependency`` — ``Y_dr``: closing a descriptor removes
      its tracking data (only meaningful when it has no children to serve).
    * ``desc_has_data`` — ``D_dr`` is non-empty: descriptors carry tracked
      meta-data (paths, offsets, periods, ...).
    """

    blocking: bool = False
    resource_has_data: bool = False
    desc_global: bool = False
    parent: ParentKind = ParentKind.SOLO
    close_children: bool = False
    close_removes_dependency: bool = False
    desc_has_data: bool = False

    def validate(self) -> None:
        """Enforce the model's internal consistency constraints.

        The paper defines ``C_dr`` only when ``P_dr != Solo``, and
        ``Y_dr <-> P_dr != Solo and not C_dr``.
        """
        if self.parent is ParentKind.SOLO and self.close_children:
            raise IDLValidationError(
                "desc_close_children requires desc_has_parent != solo "
                "(C_dr is defined only with dependencies)"
            )
        if self.close_removes_dependency and self.close_children:
            raise IDLValidationError(
                "desc_close_remove and desc_close_children are exclusive "
                "(Y_dr requires not C_dr)"
            )
        if self.close_removes_dependency and self.parent is ParentKind.SOLO:
            raise IDLValidationError(
                "desc_close_remove requires desc_has_parent != solo"
            )

    # -- mechanism predicates (Section III-C) --------------------------------
    @property
    def needs_eager_wakeup(self) -> bool:
        """T0: blocked threads must be woken eagerly at fault time."""
        return self.blocking

    @property
    def needs_parent_ordering(self) -> bool:
        """D1: parents recover before children."""
        return self.parent is not ParentKind.SOLO

    @property
    def parent_spans_components(self) -> bool:
        """XCParent: D1 recovery may require upcalls into other clients."""
        return self.parent is ParentKind.XCPARENT

    @property
    def needs_child_reconstruction(self) -> bool:
        """D0: terminating a descriptor involves its children subtree."""
        return self.close_children

    @property
    def needs_storage_descriptors(self) -> bool:
        """G0: a storage component must map global descriptors to creators."""
        return self.desc_global

    @property
    def needs_storage_data(self) -> bool:
        """G1: resource data must be redundantly stored."""
        return self.resource_has_data

    @property
    def needs_upcalls(self) -> bool:
        """U0: recovery upcalls into the creating client component."""
        return self.desc_global

    def mechanisms(self) -> List[str]:
        """The recovery mechanisms this model instance engages.

        R0 (state-machine walk) and T1 (on-demand recovery) are universal.
        """
        out = ["R0", "T1"]
        if self.needs_eager_wakeup:
            out.append("T0")
        if self.needs_child_reconstruction:
            out.append("D0")
        if self.needs_parent_ordering:
            out.append("D1")
        if self.needs_storage_descriptors:
            out.append("G0")
        if self.needs_storage_data:
            out.append("G1")
        if self.needs_upcalls:
            out.append("U0")
        return out
