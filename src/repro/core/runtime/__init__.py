"""SuperGlue stub runtime: tracking structures, stub bases, recovery."""

from repro.core.runtime.recovery import RecoveryManager
from repro.core.runtime.stubs import (
    ClientStubRuntime,
    ServerStubRuntime,
    TidProxy,
)
from repro.core.runtime.tracking import DescriptorEntry, TrackingTable

__all__ = [
    "RecoveryManager",
    "ClientStubRuntime",
    "ServerStubRuntime",
    "TidProxy",
    "DescriptorEntry",
    "TrackingTable",
]
