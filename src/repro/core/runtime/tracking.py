"""Client-side descriptor tracking (Section II-C / III-B).

The client stub tracks, for each descriptor it has handed out:

* the *client-visible* id (stable across recovery — workload code never
  sees server ids change under it);
* the *current server id* (refreshed when recovery recreates the
  descriptor, since servers assign fresh ids after a micro-reboot);
* the state-machine state (the last state-changing function applied);
* the bounded meta-data ``D_dr`` (offsets, paths, periods, owners, ...);
* parent/child links for D0/D1 ordering; and
* the server reboot epoch it was last made consistent with.

This is the paper's bounded-memory alternative to logging every interface
operation: state machine + meta-data instead of an operation log.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.core.state_machine import INIT_STATE
from repro.errors import RecoveryError


class DescriptorEntry:
    """Tracking record for one descriptor in one client component."""

    __slots__ = (
        "cdesc",
        "sid",
        "state",
        "meta",
        "create_fn",
        "parent_cdesc",
        "children",
        "recovered_epoch",
        "track_addr",
        "closed",
    )

    def __init__(self, cdesc, sid, create_fn: str, epoch: int):
        self.cdesc = cdesc
        self.sid = sid
        self.state: str = INIT_STATE
        self.meta: Dict[str, object] = {}
        self.create_fn = create_fn
        self.parent_cdesc = None
        self.children: Set[object] = set()
        self.recovered_epoch = epoch
        #: address of the in-image tracking record (client memory)
        self.track_addr: Optional[int] = None
        self.closed = False

    def __repr__(self):
        return (
            f"DescriptorEntry(cdesc={self.cdesc!r}, sid={self.sid!r}, "
            f"state={self.state!r}, epoch={self.recovered_epoch})"
        )


class TrackingTable:
    """All descriptors a client stub tracks for one server interface."""

    def __init__(self):
        self._entries: Dict[object, DescriptorEntry] = {}

    def __len__(self):
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries.values())

    def add(self, entry: DescriptorEntry) -> None:
        self._entries[entry.cdesc] = entry

    def lookup(self, cdesc) -> Optional[DescriptorEntry]:
        return self._entries.get(cdesc)

    def require(self, cdesc) -> DescriptorEntry:
        entry = self._entries.get(cdesc)
        if entry is None:
            raise RecoveryError(f"descriptor {cdesc!r} is not tracked")
        return entry

    def remove(self, cdesc) -> Optional[DescriptorEntry]:
        entry = self._entries.pop(cdesc, None)
        if entry is not None and entry.parent_cdesc is not None:
            parent = self._entries.get(entry.parent_cdesc)
            if parent is not None:
                parent.children.discard(cdesc)
        return entry

    def link_parent(self, child_cdesc, parent_cdesc) -> None:
        child = self.require(child_cdesc)
        child.parent_cdesc = parent_cdesc
        parent = self._entries.get(parent_cdesc)
        if parent is not None:
            parent.children.add(child_cdesc)

    def subtree(self, cdesc) -> List[DescriptorEntry]:
        """The descriptor and all tracked descendants (D0 removal order)."""
        out: List[DescriptorEntry] = []
        stack = [cdesc]
        seen = set()
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            entry = self._entries.get(current)
            if entry is None:
                continue
            out.append(entry)
            stack.extend(entry.children)
        return out

    def entries_by_sid(self, sid) -> List[DescriptorEntry]:
        return [e for e in self._entries.values() if e.sid == sid]

    def all_cdescs(self) -> List[object]:
        return list(self._entries.keys())
