"""Recovery orchestration: the server-recovery steps of Section III-D.

The :class:`RecoveryManager` glues the booter's micro-reboot to the stub
layer:

1. fault corrupts a component -> detected, fail-stop;
2. exception vectored to the booter (kernel);
3. booter micro-reboots the component (memcpy of the good image);
4. re-initialisation upcall (``post_reboot_init`` — e.g. the scheduler
   reflecting on kernel thread structures);
5. **T0**: threads blocked in the faulty component are woken eagerly; their
   client stubs redo the blocking invocation, re-establishing block state;
6. **T1/R0/D1**: descriptors are recovered on demand, at the priority of
   the accessing thread, parents first;
7. **G1**: services with resource data re-fetch it from storage on access;
8. **G0/U0**: unknown global descriptors are resolved through storage and
   an upcall into the creator client;
9. the rebooted server observes ordinary interface invocations that walk
   each descriptor back to its expected state.

Steps 1-5 are driven from here; 6-9 live in the stub layer and fire as
threads touch descriptors.  ``mode="eager"`` switches step 6 to eager
whole-interface recovery at fault time (the ablation of Section II-C).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.compiler.ir import InterfaceIR
from repro.errors import ConfigurationError


class RecoveryManager:
    """Coordinates micro-reboot recovery across stubs and services."""

    def __init__(self, kernel, mode: str = "ondemand"):
        if mode not in ("ondemand", "eager"):
            raise ConfigurationError(f"unknown recovery mode {mode!r}")
        self.kernel = kernel
        self.mode = mode
        kernel.recovery_manager = self
        self.interfaces: Dict[str, InterfaceIR] = {}
        #: per-service descriptor-recovery cost samples (cycles) — Fig. 6b.
        self.recovery_samples: Dict[str, List[int]] = {}
        #: (clock, service, eagerly woken threads) per micro-reboot.
        self.reboot_events: List[Tuple[int, str, int]] = []

    def register_interface(self, ir: InterfaceIR) -> None:
        self.interfaces[ir.name] = ir

    def pool_restore(self) -> None:
        # Registered interfaces are build-time wiring and survive; only
        # the per-run measurement state is dropped.
        self.recovery_samples = {}
        self.reboot_events = []

    # ------------------------------------------------------------------
    def on_micro_reboot(self, component, fault) -> None:
        """Booter hand-off after steps 2-4 completed."""
        ir = self.interfaces.get(component.name)
        # Step 5 (T0): wake every thread blocked in the failed component.
        # Their parked invocations are re-issued through the client stubs
        # ("redo"), which first recover the touched descriptors and then
        # re-block, restoring the expectations of both sides.
        woken = self.kernel.wake_all_in(component.name, redo=True)
        self.reboot_events.append(
            (self.kernel.clock.now, component.name, woken)
        )
        if self.kernel.recorder.enabled:
            self.kernel.recorder.emit(
                "t0_wake", component=component.name, woken=woken
            )
        if self.mode == "eager" and ir is not None:
            thread = self.kernel.current
            if thread is not None:
                for stub in self.kernel.all_stubs_for_server(component.name):
                    if hasattr(stub, "recover_all"):
                        stub.recover_all(self.kernel, thread)

    # ------------------------------------------------------------------
    def record_descriptor_recovery(self, service: str, cycles: int) -> None:
        self.recovery_samples.setdefault(service, []).append(cycles)
        if self.kernel.recorder.enabled:
            self.kernel.recorder.metrics.histogram(
                "recovery_cycles"
            ).observe(cycles)

    def mean_recovery_cycles(self, service: str) -> Optional[float]:
        samples = self.recovery_samples.get(service)
        if not samples:
            return None
        return sum(samples) / len(samples)

    @property
    def total_recoveries(self) -> int:
        return sum(len(v) for v in self.recovery_samples.values())
