"""Runtime bases for SuperGlue-generated (and C^3 hand-written) stubs.

The generated code (see :mod:`repro.core.compiler.codegen`) subclasses
:class:`ClientStubRuntime` and :class:`ServerStubRuntime`.  The bases
provide the *mechanisms* — descriptor tables, tracking traces in client
memory, the recovery walk engine, storage interactions — while the
generated subclasses contain the per-interface *policy* (which arguments
to track, which branch of Fig. 4's template to take per function).

The client stub implements the redo loop of Fig. 4:

    redo:
        cli_if_desc_update(...)      # on-demand recovery (T1, D1, R0)
        ret = cli_if_invoke(...)     # the actual component invocation
        if fault: CSTUB_FAULT_UPDATE(); goto redo
        ret = cli_if_track(...)      # descriptor state tracking
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.composite.kernel import FAULT
from repro.composite.machine import EAX, EBX, ECX, ESI, Trace
from repro.composite.thread import Invoke
from repro.composite.services.common import TraceCache
from repro.core.compiler.ir import FunctionIR, InterfaceIR
from repro.core.runtime.tracking import DescriptorEntry, TrackingTable
from repro.errors import InvalidDescriptor, RecoveryError
from repro.observe import scalar as _scalar

#: Magic word guarding client-side tracking records.
TRACK_MAGIC = 0x7AC4E001

#: Meta key under which sticky-function callers are remembered, so replay
#: can impersonate the original principal (e.g. a lock's owner).
OWNER_KEY = "_owner"

#: Cycle cost of the CSTUB_FAULT_UPDATE epoch resynchronisation.
FAULT_UPDATE_CYCLES = 150

#: Iterations of the tracking-structure marshalling loop per tracked
#: invocation (calibrated so infrastructure overhead lands in the paper's
#: measured ~10-12% band for the web-server workload).
TRACK_MARSHAL_ITERS = 117


class TidProxy:
    """A thread façade with an overridden tid, for recovery impersonation.

    Recovery replays interface functions whose semantics bind the calling
    thread (e.g. ``lock_take`` records the caller as owner).  The walk runs
    at the *recovering* thread's priority and cost, but the replayed call
    must act for the descriptor's original principal; the proxy forwards
    everything to the real thread except ``tid``.
    """

    __slots__ = ("_thread", "_tid")

    def __init__(self, thread, tid: int):
        object.__setattr__(self, "_thread", thread)
        object.__setattr__(self, "_tid", tid)

    @property
    def tid(self):
        return self._tid

    def __getattr__(self, name):
        return getattr(object.__getattribute__(self, "_thread"), name)

    def __setattr__(self, name, value):
        setattr(object.__getattribute__(self, "_thread"), name, value)


class ClientStubRuntime:
    """Base for per-(client, server) interface stubs on the client side."""

    #: Set by generated subclasses.
    SERVICE: str = ""

    def __init__(self, ir: InterfaceIR, client: str, server: str):
        self.ir = ir
        self.client = client
        self.server = server
        self.table = TrackingTable()
        self.seen_epoch = 0
        #: Tracking-trace cache: the micro-ops of a tracking trace are a
        #: pure function of (label, record address, seen epoch, store
        #: count), and the steady state re-executes the same few shapes on
        #: every invocation.  Reusing the Trace object keeps op lists (and
        #: thus injection offsets) bit-identical while letting the fast
        #: path amortise its one-time compile.
        self._track_traces = TraceCache()
        #: statistics: (tracking invocations, recovery walks, walk cycles)
        self.stats = {
            "tracked_ops": 0,
            "recoveries": 0,
            "recovery_cycles": 0,
            "fault_updates": 0,
            "redos": 0,
        }
        #: Memo of ``stub_<fn>`` lookups (None for pass-through
        #: functions); invoke() is the hottest stub entry point and the
        #: getattr + f-string per call shows up in campaign profiles.
        self._stub_methods: Dict[str, Optional[Callable]] = {}

    def pool_pristine(self) -> bool:
        """Is every piece of per-run state still at its sealed value?

        The predicate behind :meth:`pool_restore`'s skip — a stub the
        run never drove needs no reset.  The tail cache's state probe
        reuses it to encode untouched stubs as a constant marker
        instead of deep-freezing them; both uses lean on the same
        invariant (pristine implies sealed state), which the
        ``REPRO_POOL_DEBUG`` restored==fresh differential enforces.
        """
        return (
            self.seen_epoch == 0
            and not self.table._entries
            and not any(self.stats.values())
        )

    def pool_restore(self) -> None:
        """Reset per-run tracking state for a pooled system restore.

        ``_track_traces`` is deliberately kept: its keys capture every
        trace-determining input (label, record address, epoch, store
        count), and pooled runs replay allocations at identical
        addresses, so reuse changes wall-clock only — never op lists.
        A stub the previous run never drove is already reset — skip it.
        """
        if self.pool_pristine():
            return
        self.table = TrackingTable()
        self.seen_epoch = 0
        for key in self.stats:
            self.stats[key] = 0

    # ------------------------------------------------------------------
    # Entry point from the kernel
    # ------------------------------------------------------------------
    def invoke(self, kernel, thread, fn: str, args: Tuple):
        # SWIFI's IDL-boundary fuzz class interposes here: the stub (and
        # the server behind it) sees the corrupted arguments exactly as
        # if the client had passed them.
        swifi = kernel.swifi
        if swifi is not None:
            args = swifi.filter_idl_args(self.server, fn, args)
        try:
            method = self._stub_methods[fn]
        except KeyError:
            method = getattr(self, f"stub_{fn}", None)
            self._stub_methods[fn] = method
        if method is None:
            # Functions outside the IDL pass through untracked.
            result = kernel.raw_invoke(thread, self.server, fn, args)
            if result is FAULT:
                self.fault_update(kernel, thread)
                return self.invoke(kernel, thread, fn, args)
        else:
            result = method(kernel, thread, *args)
        if swifi is not None:
            result = swifi.filter_idl_ret(self.server, fn, result)
        return result

    # ------------------------------------------------------------------
    # Pieces used by generated per-function methods
    # ------------------------------------------------------------------
    def epoch(self, kernel) -> int:
        return kernel.component(self.server).reboot_epoch

    def fault_update(self, kernel, thread) -> None:
        """CSTUB_FAULT_UPDATE: resynchronise with the rebooted server."""
        self.stats["fault_updates"] += 1
        kernel.charge(thread, FAULT_UPDATE_CYCLES)
        self.seen_epoch = self.epoch(kernel)
        if kernel.recorder.enabled:
            kernel.recorder.emit(
                "fault_update", server=self.server, epoch=self.seen_epoch
            )

    def client_image(self, kernel):
        return kernel.component(self.client).image

    def ensure_track_record(self, kernel, entry: DescriptorEntry) -> int:
        """Allocate the in-image tracking record for a descriptor."""
        if entry.track_addr is None:
            image = self.client_image(kernel)
            addr = image.alloc_record(TRACK_MAGIC, 4)
            entry.track_addr = addr
        return entry.track_addr

    def track_trace(
        self, kernel, thread, entry: Optional[DescriptorEntry],
        stores: int = 2, label: str = "track",
    ) -> None:
        """Execute the descriptor-tracking micro-ops in *client* memory.

        This is the infrastructure overhead measured in Fig. 6(a): a magic
        check plus a handful of loads/stores updating the tracking record.
        """
        self.stats["tracked_ops"] += 1
        addr = (
            self.ensure_track_record(kernel, entry)
            if entry is not None else None
        )
        key = (label, addr, self.seen_epoch, stores)
        trace = self._track_traces.get(key)
        if trace is None:
            trace = Trace(label).prologue()
            if addr is not None:
                trace.li(EAX, addr)
                trace.chk(EAX, 0, TRACK_MAGIC)
                trace.ld(EBX, EAX, 1)
                for off in range(stores):
                    trace.li(ECX, (self.seen_epoch + off) & 0xFFFFFFFF)
                    trace.st(ECX, EAX, 1 + (off % 4))
            else:
                trace.li(EBX, self.seen_epoch)
            # Meta-data marshalling walk: serialising arguments/return
            # values into the tracking structure dominates the
            # per-invocation infrastructure overhead (Fig. 6a measures it
            # in microseconds).
            trace.li(ESI, TRACK_MARSHAL_ITERS)
            trace.loop(ESI, 3)
            trace.li(EAX, 0)
            trace.epilogue(EAX)
            self._track_traces.put(key, trace)
        client_component = kernel.component(self.client)
        client_component.execute(thread, trace)

    # ------------------------------------------------------------------
    # Descriptor bookkeeping (called from generated tracking code).  The
    # *policy* — which arguments and return values land in which meta
    # fields, when the state transitions, who the owner is — lives in the
    # generated code; these are the mechanisms it drives.
    # ------------------------------------------------------------------
    def new_entry(self, kernel, thread, sid, create_fn: str) -> DescriptorEntry:
        """Allocate and register a tracking entry for a fresh descriptor."""
        entry = DescriptorEntry(
            cdesc=sid, sid=sid, create_fn=create_fn, epoch=self.epoch(kernel)
        )
        # Replays of thread-bound functions impersonate the creator.
        entry.meta[OWNER_KEY] = thread.tid
        self.table.add(entry)
        return entry

    def link_parent_arg(self, entry: DescriptorEntry, parent_arg) -> None:
        """Record the parent link if the argument names a tracked entry."""
        parent_cdesc = self._parent_cdesc_from_arg(parent_arg)
        if parent_cdesc is not None:
            self.table.link_parent(entry.cdesc, parent_cdesc)

    def note_created(
        self, kernel, thread, fn_ir: FunctionIR, args: Tuple, sid,
    ) -> DescriptorEntry:
        entry = DescriptorEntry(
            cdesc=sid, sid=sid, create_fn=fn_ir.name, epoch=self.epoch(kernel)
        )
        # Remember the creating thread: replays of thread-bound functions
        # (creation, sticky) impersonate it via TidProxy.
        entry.meta[OWNER_KEY] = thread.tid
        for index, name in fn_ir.tracked:
            entry.meta[name] = args[index]
        if fn_ir.parent_index is not None:
            # Keep the raw parent argument too: replays of parentless (e.g.
            # root-relative) creations need the original value.
            entry.meta[fn_ir.param_names[fn_ir.parent_index]] = (
                args[fn_ir.parent_index]
            )
        if fn_ir.ret_track is not None:
            name, mode = fn_ir.ret_track
            if mode == "add":
                entry.meta[name] = entry.meta.get(name, 0) + sid
            else:
                entry.meta[name] = sid
        self.table.add(entry)
        if fn_ir.parent_index is not None:
            parent_cdesc = self._parent_cdesc_from_arg(args[fn_ir.parent_index])
            if parent_cdesc is not None:
                self.table.link_parent(entry.cdesc, parent_cdesc)
        self.track_trace(kernel, thread, entry, stores=3, label="track_create")
        return entry

    def _parent_cdesc_from_arg(self, parent_arg):
        """Map a parent argument value back to a tracked cdesc, if any."""
        if parent_arg in (0, None):
            return None
        if self.table.lookup(parent_arg) is not None:
            return parent_arg
        return None

    def note_terminated(self, kernel, thread, entry: DescriptorEntry) -> None:
        """Terminal tracking; D0 removes the whole tracked subtree."""
        if self.ir.model.close_children:
            for sub in self.table.subtree(entry.cdesc):
                sub.closed = True
                self.table.remove(sub.cdesc)
        else:
            entry.closed = True
            self.table.remove(entry.cdesc)
        self.track_trace(kernel, thread, None, label="track_terminate")

    def note_state(
        self, kernel, thread, fn_ir: FunctionIR, entry: DescriptorEntry,
        args: Tuple, ret,
    ):
        """Post-invocation tracking: state transition plus meta updates."""
        sm = self.ir.sm
        if sm.changes_state(fn_ir.name):
            entry.state = fn_ir.name
        if fn_ir.name in sm.sticky_fns:
            entry.meta[OWNER_KEY] = thread.tid
        for index, name in fn_ir.tracked:
            entry.meta[name] = args[index]
        if fn_ir.ret_track is not None and not isinstance(ret, (bytes, str)):
            name, mode = fn_ir.ret_track
            if mode == "add":
                entry.meta[name] = entry.meta.get(name, 0) + ret
            else:
                entry.meta[name] = ret
        elif fn_ir.ret_track is not None:
            name, mode = fn_ir.ret_track
            if mode == "add":
                entry.meta[name] = entry.meta.get(name, 0) + len(ret)
        self.track_trace(kernel, thread, entry, label="track_update")
        return ret

    # ------------------------------------------------------------------
    # Blocking support
    # ------------------------------------------------------------------
    def post_unblock(self, kernel, thread, fn: str, args: Tuple, value):
        """Called by the kernel when a blocking invocation completes.

        Generated stubs provide a per-function ``unblock_<fn>`` method
        containing the completion-tracking policy; unknown functions fall
        back to the IR-driven path.
        """
        method = getattr(self, f"unblock_{fn}", None)
        if method is not None:
            return method(kernel, thread, args, value)
        fn_ir = self.ir.functions.get(fn)
        if fn_ir is None or fn_ir.desc_index is None:
            return value
        entry = self._entry_for_desc_arg(args[fn_ir.desc_index])
        if entry is not None:
            return self.note_state(kernel, thread, fn_ir, entry, args, value)
        return value

    def _entry_for_desc_arg(self, cdesc) -> Optional[DescriptorEntry]:
        return self.table.lookup(cdesc)

    # ------------------------------------------------------------------
    # Recovery engine: R0 + T1 + D1 (+ restores), Section III-C/D
    # ------------------------------------------------------------------
    def recover_on_demand(self, kernel, thread, entry: DescriptorEntry) -> None:
        """Bring one descriptor up to date with the current server epoch."""
        epoch = self.epoch(kernel)
        if entry.recovered_epoch == epoch or entry.closed:
            return
        entry.recovered_epoch = epoch  # set first: replays must not recurse
        start = kernel.clock.now
        # D1: parents recover before children, root-first.
        if entry.parent_cdesc is not None:
            parent = self.table.lookup(entry.parent_cdesc)
            if parent is not None:
                self.recover_on_demand(kernel, thread, parent)
        walk = self.ir.sm.recovery_walk(entry.state, creation_fn=entry.create_fn)
        old_sid = entry.sid
        for fn_name in walk:
            self._replay(kernel, thread, fn_name, entry)
        for restore in self.ir.sm.restores:
            self._replay_restore(kernel, thread, restore, entry)
        if self.ir.model.desc_global and entry.sid != old_sid:
            self._record_alias(kernel, thread, old_sid, entry.sid)
        self.stats["recoveries"] += 1
        self.stats["recovery_cycles"] += kernel.clock.now - start
        if kernel.recorder.enabled:
            kernel.recorder.emit(
                "descriptor_recovery",
                server=self.server,
                cdesc=_scalar(entry.cdesc),
                sid=_scalar(entry.sid),
                cycles=kernel.clock.now - start,
            )
        manager = kernel.recovery_manager
        if manager is not None:
            manager.record_descriptor_recovery(
                self.server, kernel.clock.now - start
            )

    def recover_by_old_sid(self, kernel, thread, old_sid) -> Optional[object]:
        """G0/U0 entry point: the server stub upcalls the creator client.

        Finds the descriptor whose last-known server id is ``old_sid`` and
        recovers it; returns the new server id (or None if unknown).
        """
        for entry in self.table.entries_by_sid(old_sid):
            self.recover_on_demand(kernel, thread, entry)
            return entry.sid
        return None

    def _replay(self, kernel, thread, fn_name: str, entry: DescriptorEntry):
        fn_ir = self.ir.functions[fn_name]
        args = self._reconstruct_args(fn_ir, entry)
        if kernel.recorder.enabled:
            kernel.recorder.emit(
                "replay",
                server=self.server,
                fn=fn_name,
                sid=_scalar(entry.sid),
            )
            kernel.recorder.metrics.counter("replays").inc()
        principal = entry.meta.get(OWNER_KEY, thread.tid)
        replay_thread = (
            TidProxy(thread, principal) if principal != thread.tid else thread
        )
        result = kernel.raw_invoke(thread=replay_thread, server=self.server,
                                   fn=fn_name, args=args)
        if result is FAULT:
            # A second fault during recovery: resynchronise and retry once.
            self.fault_update(kernel, thread)
            result = kernel.raw_invoke(
                thread=replay_thread, server=self.server, fn=fn_name, args=args
            )
            if result is FAULT:
                raise RecoveryError(
                    f"repeated fault replaying {fn_name} on {self.server}"
                )
        if fn_ir.is_creation:
            entry.sid = result
        return result

    def _replay_restore(self, kernel, thread, restore, entry) -> None:
        fn_ir = self.ir.functions[restore.fn]
        count = 1
        if restore.counter is not None:
            count = int(entry.meta.get(restore.counter, 0))
        for __ in range(count):
            self._replay(kernel, thread, restore.fn, entry)

    def _reconstruct_args(self, fn_ir: FunctionIR, entry: DescriptorEntry):
        """Rebuild an argument tuple for a replay from tracked meta-data."""
        args: List[object] = []
        tracked = dict((i, name) for i, name in fn_ir.tracked)
        for index, name in enumerate(fn_ir.param_names):
            if index == fn_ir.principal_index:
                args.append(self.client)
            elif index == fn_ir.parent_index:
                args.append(self._parent_sid(entry, fn_ir))
            elif index == fn_ir.desc_index:
                args.append(entry.sid)
            elif index in tracked:
                args.append(entry.meta.get(tracked[index], 0))
            else:
                args.append(entry.meta.get(name, 0))
        return tuple(args)

    def _parent_sid(self, entry: DescriptorEntry, fn_ir: FunctionIR):
        if entry.parent_cdesc is None:
            # No tracked parent: replay the original argument value.
            name = fn_ir.param_names[fn_ir.parent_index]
            return entry.meta.get(name, 0)
        parent = self.table.lookup(entry.parent_cdesc)
        return parent.sid if parent is not None else entry.parent_cdesc

    def _record_alias(self, kernel, thread, old_sid, new_sid) -> None:
        kernel.invoke(
            thread,
            Invoke("storage", "store_put", f"alias:{self.server}", old_sid, new_sid),
        )

    # ------------------------------------------------------------------
    # Eager (T0-adjacent) recovery of *all* descriptors, used by the
    # eager-mode ablation and by blocking services at fault time.
    # ------------------------------------------------------------------
    def recover_all(self, kernel, thread) -> int:
        recovered = 0
        for cdesc in self.table.all_cdescs():
            entry = self.table.lookup(cdesc)
            if entry is None or entry.closed:
                continue
            before = entry.recovered_epoch
            self.recover_on_demand(kernel, thread, entry)
            if entry.recovered_epoch != before:
                recovered += 1
        return recovered


class ServerStubRuntime:
    """Base for server-side stubs (G0/G1-aware dispatch, Section III-C)."""

    SERVICE: str = ""

    def __init__(self, ir: InterfaceIR, component, storage: str = "storage"):
        self.ir = ir
        self.component = component
        self.storage_name = storage
        self.stats = {"einval_recoveries": 0, "replays": 0}

    def pool_pristine(self) -> bool:
        """See :meth:`ClientStubRuntime.pool_pristine` — the server
        stub's only mutable state is its recovery counters."""
        return not any(self.stats.values())

    def pool_restore(self) -> None:
        if not self.pool_pristine():
            stats = self.stats
            for key in stats:
                stats[key] = 0

    # The kernel calls this instead of component.dispatch.
    def dispatch(self, kernel, thread, fn: str, args: Tuple):
        fn_ir = self.ir.functions.get(fn)
        try:
            result = self.component.dispatch(fn, thread, args)
        except InvalidDescriptor as error:
            if fn_ir is None or not self.ir.model.desc_global:
                raise
            new_args = self._g0_recover(kernel, thread, fn_ir, args, error)
            if new_args is None:
                raise
            self.stats["einval_recoveries"] += 1
            result = self.component.dispatch(fn, thread, new_args)
        if fn_ir is not None and fn_ir.is_creation and self.ir.model.desc_global:
            self._record_creator(kernel, thread, fn_ir, args, result)
        return result

    # -- G0: global-descriptor recovery via storage + upcall (U0) ----------
    def _g0_recover(self, kernel, thread, fn_ir: FunctionIR, args, error):
        if fn_ir.desc_index is None:
            return None
        desc_id = args[fn_ir.desc_index]
        storage = kernel.component(self.storage_name)
        # 1. Another client may already have recovered it: follow aliases.
        resolved = storage.resolve_alias(thread, self.component.name, desc_id)
        if resolved != desc_id and self._known(resolved):
            return self._swap_desc(fn_ir, args, resolved)
        # 2. Ask storage who created it, and upcall that client's stub (U0).
        creator = storage.lookup_creator(thread, self.component.name, desc_id)
        if creator is None:
            return None
        client_stub = kernel.stub_for(creator, self.component.name)
        if client_stub is None:
            return None
        kernel.charge(thread, 300)  # upcall path into the creator component
        kernel.stats["upcalls"] += 1
        new_sid = client_stub.recover_by_old_sid(kernel, thread, desc_id)
        if new_sid is None:
            return None
        self.stats["replays"] += 1
        return self._swap_desc(fn_ir, args, new_sid)

    def _known(self, desc_id) -> bool:
        return self.component.has_record(desc_id)

    @staticmethod
    def _swap_desc(fn_ir: FunctionIR, args, new_desc):
        out = list(args)
        out[fn_ir.desc_index] = new_desc
        return tuple(out)

    def _record_creator(self, kernel, thread, fn_ir: FunctionIR, args, new_sid):
        storage = kernel.component(self.storage_name)
        if fn_ir.principal_index is not None:
            creator = args[fn_ir.principal_index]
        else:
            creator = getattr(thread, "home", None)
        if creator is not None and not isinstance(new_sid, (bytes, str)):
            storage.record_creator(thread, self.component.name, new_sid, creator)
