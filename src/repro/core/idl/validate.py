"""Validation and lowering: IDL AST -> compiler IR.

Cross-checks the descriptor-resource model against the state-machine
declarations and the prototype annotations, enforcing the consistency
properties the paper states (e.g. ``I^block != {} <-> B_r``), then builds
the :class:`~repro.core.compiler.ir.InterfaceIR`.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.compiler.ir import FunctionIR, InterfaceIR
from repro.core.idl.ast import InterfaceSpec
from repro.core.model import DescriptorResourceModel, ParentKind
from repro.core.state_machine import DescriptorStateMachine, RestoreSpec
from repro.errors import IDLValidationError


def build_model(spec: InterfaceSpec) -> DescriptorResourceModel:
    info = spec.info
    model = DescriptorResourceModel(
        blocking=info.get_bool("desc_block"),
        resource_has_data=info.get_bool("resc_has_data"),
        desc_global=info.get_bool("desc_is_global"),
        parent=ParentKind.from_str(info.get("desc_has_parent", "solo")),
        close_children=info.get_bool("desc_close_children"),
        close_removes_dependency=info.get_bool("desc_close_remove"),
        desc_has_data=info.get_bool("desc_has_data"),
    )
    model.validate()
    return model


def build_state_machine(spec: InterfaceSpec) -> DescriptorStateMachine:
    transitions = []
    creation: List[str] = []
    terminal: List[str] = []
    block: List[str] = []
    wakeup: List[str] = []
    readonly: List[str] = []
    restores: List[RestoreSpec] = []
    sticky: List[str] = []
    for decl in spec.sm_decls:
        if decl.kind == "transition":
            if len(decl.args) != 2:
                raise IDLValidationError(
                    f"sm_transition takes 2 functions, got {decl.args}"
                )
            transitions.append((decl.args[0], decl.args[1]))
        elif decl.kind == "creation":
            creation.extend(decl.args)
        elif decl.kind == "terminal":
            terminal.extend(decl.args)
        elif decl.kind == "block":
            block.extend(decl.args)
        elif decl.kind == "wakeup":
            wakeup.extend(decl.args)
        elif decl.kind == "readonly":
            readonly.extend(decl.args)
        elif decl.kind == "sticky":
            sticky.extend(decl.args)
        elif decl.kind == "restore":
            if not 1 <= len(decl.args) <= 2:
                raise IDLValidationError(
                    f"sm_restore takes fn[, counter], got {decl.args}"
                )
            restores.append(
                RestoreSpec(decl.args[0], decl.args[1] if len(decl.args) == 2 else None)
            )
        else:  # pragma: no cover - parser rejects unknown kinds
            raise IDLValidationError(f"unknown sm declaration {decl.kind!r}")
    sm = DescriptorStateMachine(
        functions=[f.name for f in spec.functions],
        transitions=transitions,
        creation_fns=creation,
        terminal_fns=terminal,
        block_fns=block,
        wakeup_fns=wakeup,
        readonly_fns=readonly,
        restores=restores,
        sticky_fns=sticky,
    )
    sm.validate()
    return sm


def build_ir(spec: InterfaceSpec) -> InterfaceIR:
    """Validate ``spec`` and lower it to compiler IR."""
    model = build_model(spec)
    sm = build_state_machine(spec)

    functions: Dict[str, FunctionIR] = {}
    for decl in spec.functions:
        fn = FunctionIR(
            name=decl.name,
            ret_ctype=decl.ret_ctype,
            param_names=[p.name for p in decl.params],
            param_ctypes=[p.ctype for p in decl.params],
            desc_index=decl.desc_param_index(),
            parent_index=decl.parent_param_index(),
            principal_index=decl.principal_param_index(),
            tracked=decl.tracked_params(),
            ret_track=(
                (decl.ret_track[1], decl.ret_track[2]) if decl.ret_track else None
            ),
            is_creation=decl.name in sm.creation_fns,
            is_terminal=decl.name in sm.terminal_fns,
            is_block=decl.name in sm.block_fns,
            is_wakeup=decl.name in sm.wakeup_fns,
            is_readonly=decl.name in sm.readonly_fns,
        )
        functions[decl.name] = fn

    _cross_check(spec, model, sm, functions)
    return InterfaceIR(
        name=spec.name,
        model=model,
        sm=sm,
        functions=functions,
        idl_loc=spec.loc,
    )


def _cross_check(spec, model, sm, functions) -> None:
    # I^block != {} <-> B_r  (Section III-B).
    if bool(sm.block_fns) != model.blocking:
        raise IDLValidationError(
            "desc_block must match the presence of sm_block functions "
            f"(desc_block={model.blocking}, sm_block={sorted(sm.block_fns)})"
        )
    if sm.block_fns and not sm.wakeup_fns:
        raise IDLValidationError(
            "blocking interfaces must declare an sm_wakeup function"
        )
    # Parent dependencies need a parent_desc-annotated creation parameter.
    has_parent_param = any(
        fn.parent_index is not None
        for fn in functions.values()
        if fn.is_creation
    )
    if model.parent is not ParentKind.SOLO and not has_parent_param:
        raise IDLValidationError(
            "desc_has_parent != solo but no creation function takes a "
            "parent_desc(...) parameter"
        )
    if model.parent is ParentKind.SOLO and has_parent_param:
        raise IDLValidationError(
            "parent_desc(...) parameter declared but desc_has_parent = solo"
        )
    # Every non-creation function must name the descriptor it acts on.
    for fn in functions.values():
        if fn.is_creation:
            continue
        if fn.desc_index is None:
            raise IDLValidationError(
                f"{fn.name} is not a creation function and has no desc(...) "
                f"parameter"
            )
    # Descriptor meta-data declared iff some data is tracked.
    tracks_any = any(
        fn.tracked or fn.ret_track for fn in functions.values()
    )
    if tracks_any and not model.desc_has_data:
        raise IDLValidationError(
            "desc_data(...) annotations present but desc_has_data = false"
        )
    # Creation functions must either track their returned descriptor id or
    # return it plainly; enforce a declared return track when global, since
    # G0 recovery must reproduce the id for the storage component.
    if model.desc_global:
        creation = [f for f in functions.values() if f.is_creation]
        if not any(f.ret_track for f in creation):
            raise IDLValidationError(
                "global descriptors require desc_data_retval on the "
                "creation function (G0 needs the id recorded)"
            )
