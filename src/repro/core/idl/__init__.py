"""SuperGlue IDL front end (Section IV-A, Table I, Fig. 3)."""

from repro.core.idl.ast import (
    FunctionDecl,
    InterfaceSpec,
    Param,
    ServiceInfo,
    SMDecl,
)
from repro.core.idl.parser import parse_idl
from repro.core.idl.validate import build_ir

__all__ = [
    "FunctionDecl",
    "InterfaceSpec",
    "Param",
    "ServiceInfo",
    "SMDecl",
    "parse_idl",
    "build_ir",
]
