"""Tokenizer for the SuperGlue IDL.

The paper's implementation leans on the C preprocessor plus pycparser
(Section IV-B).  Offline, we tokenize the small grammar directly: the
token set is identifiers, integers, and the punctuation
``( ) { } , ; =``, with ``//`` and ``/* */`` comments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import IDLSyntaxError

PUNCTUATION = "(){},;="


@dataclass
class Token:
    kind: str  # "ident" | "number" | "punct" | "eof"
    value: str
    line: int
    column: int

    def __repr__(self):
        return f"Token({self.kind}, {self.value!r}, L{self.line})"


def tokenize(source: str) -> List[Token]:
    """Tokenize IDL source; raises :class:`IDLSyntaxError` on bad input."""
    tokens: List[Token] = []
    line = 1
    column = 1
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            column = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            column += 1
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end == -1:
                raise IDLSyntaxError("unterminated block comment", line, column)
            skipped = source[i:end + 2]
            line += skipped.count("\n")
            i = end + 2
            continue
        if ch in PUNCTUATION:
            tokens.append(Token("punct", ch, line, column))
            i += 1
            column += 1
            continue
        if ch.isdigit() or (
            ch == "-" and i + 1 < n and source[i + 1].isdigit()
        ):
            start = i
            i += 1
            while i < n and (source[i].isalnum() or source[i] == "x"):
                i += 1
            tokens.append(Token("number", source[start:i], line, column))
            column += i - start
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            tokens.append(Token("ident", source[start:i], line, column))
            column += i - start
            continue
        if ch == "*":
            # Pointer declarators are accepted and folded into the type.
            tokens.append(Token("ident", "*", line, column))
            i += 1
            column += 1
            continue
        raise IDLSyntaxError(f"unexpected character {ch!r}", line, column)
    tokens.append(Token("eof", "", line, column))
    return tokens


class TokenStream:
    """Cursor over a token list with the usual parser helpers."""

    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._pos = 0

    def peek(self, ahead: int = 0) -> Token:
        index = min(self._pos + ahead, len(self._tokens) - 1)
        return self._tokens[index]

    def next(self) -> Token:
        token = self.peek()
        if token.kind != "eof":
            self._pos += 1
        return token

    def expect(self, kind: str, value: str = None) -> Token:
        token = self.peek()
        if token.kind != kind or (value is not None and token.value != value):
            want = value if value is not None else kind
            raise IDLSyntaxError(
                f"expected {want!r}, found {token.value!r}",
                token.line,
                token.column,
            )
        return self.next()

    def accept(self, kind: str, value: str = None) -> bool:
        token = self.peek()
        if token.kind == kind and (value is None or token.value == value):
            self.next()
            return True
        return False

    @property
    def at_eof(self) -> bool:
        return self.peek().kind == "eof"
