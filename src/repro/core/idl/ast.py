"""Abstract syntax tree for the SuperGlue IDL.

The surface syntax is the paper's (Table I / Fig. 3): a
``service_global_info`` block instantiating the descriptor-resource model,
``sm_*`` declarations describing the descriptor state machine, and
C-style function prototypes whose parameters carry tracking annotations
(``desc``, ``desc_data``, ``parent_desc``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class ServiceInfo:
    """The ``service_global_info = { ... };`` block (raw key/value)."""

    entries: Dict[str, str] = field(default_factory=dict)

    def get_bool(self, key: str, default: bool = False) -> bool:
        value = self.entries.get(key)
        if value is None:
            return default
        return value.strip().lower() == "true"

    def get(self, key: str, default: Optional[str] = None) -> Optional[str]:
        return self.entries.get(key, default)


@dataclass
class SMDecl:
    """One ``sm_<kind>(args...);`` declaration.

    Kinds: ``transition``, ``creation``, ``terminal``, ``block``,
    ``wakeup``, ``readonly`` (extension), ``restore`` (extension).
    """

    kind: str
    args: List[str]
    line: int = 0


@dataclass
class Param:
    """A function parameter with its tracking annotations.

    Attributes:
        ctype: declared C type (e.g. ``long``, ``componentid_t``).
        name: parameter name.
        is_desc: annotated ``desc(...)`` — the descriptor-id argument the
            stub translates and recovers on demand.
        is_parent: annotated ``parent_desc(...)`` — the parent descriptor.
        tracked: annotated ``desc_data(...)`` — stored in the descriptor's
            tracking meta-data under ``name``.
    """

    ctype: str
    name: str
    is_desc: bool = False
    is_parent: bool = False
    tracked: bool = False

    @property
    def is_principal(self) -> bool:
        """Component-id parameters identify the invoking client."""
        return self.ctype in ("componentid_t", "spdid_t")


@dataclass
class FunctionDecl:
    """A prototype, e.g. ``long evt_wait(componentid_t compid, desc(long evtid));``."""

    name: str
    ret_ctype: str
    params: List[Param] = field(default_factory=list)
    #: From a preceding ``desc_data_retval(type, name[, mode])``:
    #: (ctype, meta name, mode) where mode is "set" or "add".
    ret_track: Optional[Tuple[str, str, str]] = None
    line: int = 0

    def desc_param_index(self) -> Optional[int]:
        for i, p in enumerate(self.params):
            if p.is_desc:
                return i
        return None

    def parent_param_index(self) -> Optional[int]:
        for i, p in enumerate(self.params):
            if p.is_parent:
                return i
        return None

    def principal_param_index(self) -> Optional[int]:
        for i, p in enumerate(self.params):
            if p.is_principal:
                return i
        return None

    def tracked_params(self) -> List[Tuple[int, str]]:
        return [
            (i, p.name)
            for i, p in enumerate(self.params)
            if p.tracked and not p.is_parent and not p.is_principal
        ]


@dataclass
class InterfaceSpec:
    """A parsed SuperGlue IDL file."""

    name: str
    info: ServiceInfo
    sm_decls: List[SMDecl] = field(default_factory=list)
    functions: List[FunctionDecl] = field(default_factory=list)
    source: str = ""

    def function(self, name: str) -> FunctionDecl:
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise KeyError(name)

    @property
    def loc(self) -> int:
        """Non-blank, non-comment lines of the IDL source (Fig. 6c)."""
        count = 0
        in_block_comment = False
        for line in self.source.splitlines():
            stripped = line.strip()
            if in_block_comment:
                if "*/" in stripped:
                    in_block_comment = False
                continue
            if not stripped or stripped.startswith("//"):
                continue
            if stripped.startswith("/*"):
                if "*/" not in stripped:
                    in_block_comment = True
                continue
            count += 1
        return count
