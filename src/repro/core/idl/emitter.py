"""IDL emitter: render an :class:`InterfaceSpec` back to source text.

The inverse of the parser.  Used for tooling (normalising hand-written
specs, generating documentation) and for the round-trip property tests:
``parse(emit(parse(text)))`` must reproduce the same specification.
"""

from __future__ import annotations

from typing import List

from repro.core.idl.ast import FunctionDecl, InterfaceSpec, Param


def _render_param(param: Param) -> str:
    decl = f"{param.ctype} {param.name}" if param.name else param.ctype
    if param.is_parent:
        decl = f"parent_desc({decl})"
    if param.is_desc:
        decl = f"desc({decl})"
    if param.tracked and not param.is_parent:
        decl = f"desc_data({decl})"
    elif param.tracked and param.is_parent:
        decl = f"desc_data({decl})"
    return decl


def _render_function(fn: FunctionDecl) -> List[str]:
    lines: List[str] = []
    if fn.ret_track is not None:
        ctype, name, mode = fn.ret_track
        suffix = f", {mode}" if mode != "set" else ""
        lines.append(f"desc_data_retval({ctype}, {name}{suffix})")
    params = ", ".join(_render_param(p) for p in fn.params)
    ret = f"{fn.ret_ctype} " if fn.ret_ctype else ""
    lines.append(f"{ret}{fn.name}({params});")
    return lines


def emit_idl(spec: InterfaceSpec) -> str:
    """Render ``spec`` as SuperGlue IDL source."""
    lines: List[str] = [f"service = {spec.name};", ""]
    if spec.info.entries:
        lines.append("service_global_info = {")
        entries = list(spec.info.entries.items())
        for index, (key, value) in enumerate(entries):
            comma = "," if index < len(entries) - 1 else ""
            lines.append(f"        {key} = {value}{comma}")
        lines.append("};")
        lines.append("")
    for decl in spec.sm_decls:
        args = ", ".join(decl.args)
        lines.append(f"sm_{decl.kind}({args});")
    if spec.sm_decls:
        lines.append("")
    for fn in spec.functions:
        lines.extend(_render_function(fn))
    return "\n".join(lines) + "\n"


def specs_equivalent(a: InterfaceSpec, b: InterfaceSpec) -> bool:
    """Structural equivalence, ignoring source text and line numbers."""
    if a.name != b.name or a.info.entries != b.info.entries:
        return False
    if [(d.kind, tuple(d.args)) for d in a.sm_decls] != [
        (d.kind, tuple(d.args)) for d in b.sm_decls
    ]:
        return False
    if len(a.functions) != len(b.functions):
        return False
    for fa, fb in zip(a.functions, b.functions):
        if (fa.name, fa.ret_ctype, fa.ret_track) != (
            fb.name, fb.ret_ctype, fb.ret_track
        ):
            return False
        if len(fa.params) != len(fb.params):
            return False
        for pa, pb in zip(fa.params, fb.params):
            if (pa.ctype, pa.name, pa.is_desc, pa.is_parent, pa.tracked) != (
                pb.ctype, pb.name, pb.is_desc, pb.is_parent, pb.tracked
            ):
                return False
    return True
