"""Recursive-descent parser for the SuperGlue IDL (Fig. 3 grammar).

Top-level items:

* ``service_global_info = { key = value, ... };``
* ``sm_transition(a, b);`` and the other ``sm_*`` declarations;
* ``desc_data_retval(type, name[, mode])`` — annotates the *next*
  prototype's return value;
* C-style prototypes whose parameters may be wrapped in ``desc(...)``,
  ``desc_data(...)``, and ``parent_desc(...)`` annotations (annotations
  nest, e.g. ``desc_data(parent_desc(long parent_evtid))``).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.idl.ast import (
    FunctionDecl,
    InterfaceSpec,
    Param,
    ServiceInfo,
    SMDecl,
)
from repro.core.idl.lexer import TokenStream, tokenize
from repro.errors import IDLSyntaxError

SM_KINDS = (
    "sm_transition",
    "sm_creation",
    "sm_terminal",
    "sm_block",
    "sm_wakeup",
    "sm_readonly",
    "sm_restore",
    "sm_sticky",
)

PARAM_ANNOTATIONS = ("desc", "desc_data", "parent_desc")


def parse_idl(source: str, name: str = "") -> InterfaceSpec:
    """Parse IDL source text into an :class:`InterfaceSpec`.

    ``name`` is the service name; it may instead be declared in the file
    with ``service = <name>;`` (an extension, since the paper names the
    interface by its file name).
    """
    stream = TokenStream(tokenize(source))
    info = ServiceInfo()
    sm_decls: List[SMDecl] = []
    functions: List[FunctionDecl] = []
    pending_ret_track: Optional[Tuple[str, str, str]] = None
    service_name = name

    while not stream.at_eof:
        token = stream.peek()
        if token.kind != "ident":
            raise IDLSyntaxError(
                f"unexpected {token.value!r} at top level", token.line, token.column
            )
        if token.value == "service":
            stream.next()
            stream.expect("punct", "=")
            service_name = stream.expect("ident").value
            stream.expect("punct", ";")
        elif token.value == "service_global_info":
            stream.next()
            _parse_info_block(stream, info)
        elif token.value in SM_KINDS:
            sm_decls.append(_parse_sm_decl(stream))
        elif token.value == "desc_data_retval":
            if pending_ret_track is not None:
                raise IDLSyntaxError(
                    "desc_data_retval not followed by a prototype",
                    token.line,
                    token.column,
                )
            pending_ret_track = _parse_ret_track(stream)
        else:
            fn = _parse_prototype(stream)
            fn.ret_track = pending_ret_track
            pending_ret_track = None
            functions.append(fn)

    if pending_ret_track is not None:
        raise IDLSyntaxError("dangling desc_data_retval at end of file")
    if not service_name:
        raise IDLSyntaxError(
            "no service name: pass name= or declare 'service = <name>;'"
        )
    return InterfaceSpec(
        name=service_name,
        info=info,
        sm_decls=sm_decls,
        functions=functions,
        source=source,
    )


def _parse_info_block(stream: TokenStream, info: ServiceInfo) -> None:
    stream.expect("punct", "=")
    stream.expect("punct", "{")
    while not stream.accept("punct", "}"):
        key = stream.expect("ident").value
        stream.expect("punct", "=")
        value_token = stream.peek()
        if value_token.kind not in ("ident", "number"):
            raise IDLSyntaxError(
                f"bad value for {key}", value_token.line, value_token.column
            )
        stream.next()
        info.entries[key] = value_token.value
        stream.accept("punct", ",")
    stream.accept("punct", ";")


def _parse_sm_decl(stream: TokenStream) -> SMDecl:
    token = stream.expect("ident")
    kind = token.value[len("sm_"):]
    stream.expect("punct", "(")
    args: List[str] = []
    while not stream.accept("punct", ")"):
        args.append(stream.expect("ident").value)
        stream.accept("punct", ",")
    stream.expect("punct", ";")
    return SMDecl(kind=kind, args=args, line=token.line)


def _parse_ret_track(stream: TokenStream) -> Tuple[str, str, str]:
    stream.expect("ident", "desc_data_retval")
    stream.expect("punct", "(")
    ctype = _parse_type_tokens(stream)
    stream.expect("punct", ",")
    name = stream.expect("ident").value
    mode = "set"
    if stream.accept("punct", ","):
        mode = stream.expect("ident").value
        if mode not in ("set", "add"):
            raise IDLSyntaxError(f"desc_data_retval mode must be set|add, got {mode!r}")
    stream.expect("punct", ")")
    stream.accept("punct", ";")
    return (ctype, name, mode)


def _parse_type_tokens(stream: TokenStream) -> str:
    """One or more identifiers forming a C type (``unsigned long``, ...)."""
    parts = [stream.expect("ident").value]
    # Multi-word types and pointers: keep consuming identifiers while the
    # token after the next one is not a separator that would make the
    # current identifier the *name*.
    while stream.peek().kind == "ident" and stream.peek(1).kind == "ident":
        parts.append(stream.next().value)
    while stream.peek().kind == "ident" and stream.peek().value == "*":
        parts.append(stream.next().value)
    return " ".join(parts)


def _parse_prototype(stream: TokenStream) -> FunctionDecl:
    first = stream.expect("ident")
    # Either "rettype name(" or just "name(" (Fig. 3's evt_split has the
    # return described by the preceding desc_data_retval line).
    type_parts = [first.value]
    while stream.peek().kind == "ident" and stream.peek(1).kind == "ident":
        type_parts.append(stream.next().value)
    if stream.peek().kind == "ident":
        fn_name = stream.next().value
        ret_ctype = " ".join(type_parts)
    else:
        fn_name = type_parts[-1]
        ret_ctype = " ".join(type_parts[:-1]) or "long"
    stream.expect("punct", "(")
    params: List[Param] = []
    if not stream.accept("punct", ")"):
        while True:
            params.append(_parse_param(stream))
            if stream.accept("punct", ")"):
                break
            stream.expect("punct", ",")
    stream.expect("punct", ";")
    return FunctionDecl(
        name=fn_name, ret_ctype=ret_ctype, params=params, line=first.line
    )


def _parse_param(stream: TokenStream) -> Param:
    """A parameter: possibly-nested annotations around ``type name``."""
    annotations = []
    while (
        stream.peek().kind == "ident"
        and stream.peek().value in PARAM_ANNOTATIONS
        and stream.peek(1).kind == "punct"
        and stream.peek(1).value == "("
    ):
        annotations.append(stream.next().value)
        stream.expect("punct", "(")
    if stream.peek().value == "void":
        stream.next()
        param = Param(ctype="void", name="")
    else:
        ctype = _parse_type_tokens(stream)
        name = stream.expect("ident").value
        param = Param(ctype=ctype, name=name)
    for annotation in annotations:
        stream.expect("punct", ")")
        if annotation == "desc":
            param.is_desc = True
        elif annotation == "desc_data":
            param.tracked = True
        elif annotation == "parent_desc":
            param.is_parent = True
            param.tracked = True
    return param
