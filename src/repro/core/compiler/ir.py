"""Intermediate representation of a SuperGlue interface.

The front end (:mod:`repro.core.idl`) parses the IDL and the validator
lowers it into this IR, which encodes the resource-descriptor model and
the state-machine model (Section IV-B: "extracts the specifications from
the abstract syntax tree into an intermediate representation").  The back
end's predicates and templates consume only the IR.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.model import DescriptorResourceModel
from repro.core.state_machine import DescriptorStateMachine


@dataclass
class FunctionIR:
    """Everything codegen needs to know about one interface function."""

    name: str
    ret_ctype: str
    param_names: List[str] = field(default_factory=list)
    param_ctypes: List[str] = field(default_factory=list)
    #: index of the ``desc(...)`` parameter, if any
    desc_index: Optional[int] = None
    #: index of the ``parent_desc(...)`` parameter, if any
    parent_index: Optional[int] = None
    #: index of the component-id ("principal") parameter, if any
    principal_index: Optional[int] = None
    #: (index, meta-name) pairs for ``desc_data(...)`` parameters
    tracked: List[Tuple[int, str]] = field(default_factory=list)
    #: (meta-name, mode) from ``desc_data_retval``; mode is "set" or "add"
    ret_track: Optional[Tuple[str, str]] = None
    is_creation: bool = False
    is_terminal: bool = False
    is_block: bool = False
    is_wakeup: bool = False
    is_readonly: bool = False

    @property
    def arity(self) -> int:
        return len(self.param_names)


@dataclass
class InterfaceIR:
    """A fully validated, lowered interface specification."""

    name: str
    model: DescriptorResourceModel
    sm: DescriptorStateMachine
    functions: Dict[str, FunctionIR] = field(default_factory=dict)
    idl_loc: int = 0

    @property
    def creation_fn(self) -> FunctionIR:
        for fn in self.functions.values():
            if fn.is_creation:
                return fn
        raise KeyError("no creation function")

    @property
    def terminal_fns(self) -> List[FunctionIR]:
        return [f for f in self.functions.values() if f.is_terminal]

    @property
    def block_fns(self) -> List[FunctionIR]:
        return [f for f in self.functions.values() if f.is_block]

    @property
    def wakeup_fns(self) -> List[FunctionIR]:
        return [f for f in self.functions.values() if f.is_wakeup]

    def mechanisms(self) -> List[str]:
        return self.model.mechanisms()

    def meta_names(self) -> List[str]:
        """All tracked meta-data field names, in declaration order."""
        seen: List[str] = []
        for fn in self.functions.values():
            if fn.ret_track and fn.ret_track[0] not in seen:
                seen.append(fn.ret_track[0])
            for __, name in fn.tracked:
                if name not in seen:
                    seen.append(name)
        return seen
