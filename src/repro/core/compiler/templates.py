"""The compiler back end's template network (Section IV-B).

"The back end is implemented as a network of templates associated with
predicates.  The templates implement the logic of the recovery mechanisms
... Templates are only included in the generated code if the predicate
evaluates to true given the intermediate representation of the models."

Each :class:`Template` couples a predicate name (from
:mod:`repro.core.compiler.predicates`) with a render function producing
Python source lines.  Client-side templates compose into one generated
method per interface function, instantiating the CSTUB_FN shape of Fig. 4
(desc update -> invoke -> fault update/redo -> track).  Server-side
templates produce the EINVAL-aware dispatch for G0.
"""

from __future__ import annotations

from typing import Callable, List, NamedTuple, Optional

from repro.core.compiler.ir import FunctionIR, InterfaceIR
from repro.core.compiler.predicates import PREDICATES


class Context(NamedTuple):
    ir: InterfaceIR
    fn: Optional[FunctionIR]


class Template(NamedTuple):
    """One predicate-template pair of the compiler back end."""

    name: str
    predicate: str
    render: Callable[[Context], List[str]]

    def applies(self, ctx: Context) -> bool:
        return PREDICATES[self.predicate](ctx.ir, ctx.fn)


def _args_list(fn: FunctionIR) -> str:
    return ", ".join(fn.param_names)


def _args_tuple(fn: FunctionIR) -> str:
    names = ", ".join(fn.param_names)
    return f"({names},)" if fn.param_names else "()"


def _sargs_expr(fn: FunctionIR) -> str:
    """Server-argument tuple with descriptor/parent id translation."""
    parts = []
    for index, name in enumerate(fn.param_names):
        if index == fn.desc_index:
            parts.append(f"(__entry.sid if __entry is not None else {name})")
        elif index == fn.parent_index:
            parts.append(f"(__parent.sid if __parent is not None else {name})")
        else:
            parts.append(name)
    inner = ", ".join(parts)
    return f"({inner},)" if parts else "()"


# ---------------------------------------------------------------------------
# Client-side templates, in composition order
# ---------------------------------------------------------------------------

def t_signature(ctx: Context) -> List[str]:
    fn = ctx.fn
    return [
        f"def stub_{fn.name}(self, kernel, thread, {_args_list(fn)}):",
        f'    """Generated CSTUB for {ctx.ir.name}.{fn.name} (Fig. 4)."""',
    ]


def t_desc_lookup(ctx: Context) -> List[str]:
    fn = ctx.fn
    desc_name = fn.param_names[fn.desc_index]
    return [
        f"    # [T-desc-lookup] look up the descriptor by its id",
        f"    __entry = self.table.lookup({desc_name})",
    ]


def t_no_desc(ctx: Context) -> List[str]:
    return ["    __entry = None"]


def t_parent_lookup(ctx: Context) -> List[str]:
    fn = ctx.fn
    parent_name = fn.param_names[fn.parent_index]
    return [
        f"    # [T-parent-lookup] parent descriptor for dependency tracking",
        f"    __parent = self.table.lookup({parent_name})",
    ]


def t_no_parent(ctx: Context) -> List[str]:
    return ["    __parent = None"]


def t_d1_parent_recover(ctx: Context) -> List[str]:
    return [
        "    # [T-d1-parent] D1: the parent must be consistent before a",
        "    # dependent descriptor can be (re)created under it",
        "    if __parent is not None:",
        "        self.recover_on_demand(kernel, thread, __parent)",
    ]


def t_d0_children(ctx: Context) -> List[str]:
    fn = ctx.fn
    desc_name = fn.param_names[fn.desc_index]
    return [
        "    # [T-d0-children] D0: recursive revocation also acts on the",
        "    # children; recover the tracked subtree so terminating the",
        "    # parent revokes real, consistent state",
        f"    for __sub in self.table.subtree({desc_name}):",
        "        self.recover_on_demand(kernel, thread, __sub)",
    ]


def t_redo_open(ctx: Context) -> List[str]:
    return [
        "    __einval_retries = 0",
        "    while True:  # redo: (Fig. 4)",
    ]


def t_t1_ondemand(ctx: Context) -> List[str]:
    return [
        "        # [T-t1-ondemand] cli_if_desc_update: on-demand recovery at",
        "        # the accessing thread's priority (T1 -> R0, D1)",
        "        if __entry is not None:",
        "            self.recover_on_demand(kernel, thread, __entry)",
    ]


def t_invoke(ctx: Context) -> List[str]:
    fn = ctx.fn
    needs_try = (
        fn.desc_index is not None
        or fn.parent_index is not None
        or fn.is_block
    )
    lines = [
        "        # [T-invoke] cli_if_invoke: the component invocation itself",
        f"        __sargs = {_sargs_expr(fn)}",
    ]
    if needs_try:
        lines += [
            "        try:",
            f"            __ret = kernel.raw_invoke(thread, self.server, "
            f"{fn.name!r}, __sargs)",
        ]
    else:
        lines += [
            f"        __ret = kernel.raw_invoke(thread, self.server, "
            f"{fn.name!r}, __sargs)",
        ]
    return lines


def t_block_passthrough(ctx: Context) -> List[str]:
    return [
        "        except BlockThread:",
        "            # [T-block] blocking call: the kernel parks the thread;",
        "            # tracking completes in post_unblock on wakeup",
        "            raise",
    ]


def t_einval_retry(ctx: Context) -> List[str]:
    fn = ctx.fn
    lines = [
        "        except InvalidDescriptor:",
        "            # [T-einval] server lost a descriptor (stale id after a",
        "            # reboot): force re-recovery and retry",
        "            if __einval_retries >= 3:",
        "                raise",
        "            __einval_retries += 1",
    ]
    if fn.desc_index is not None:
        lines += [
            "            if __entry is not None:",
            "                __entry.recovered_epoch = -1",
            "                continue",
        ]
    if fn.parent_index is not None:
        lines += [
            "            if __parent is not None:",
            "                __parent.recovered_epoch = -1",
            "                self.recover_on_demand(kernel, thread, __parent)",
            "                continue",
        ]
    lines += ["            raise"]
    return lines


def t_fault_update(ctx: Context) -> List[str]:
    return [
        "        # [T-fault-update] CSTUB_FAULT_UPDATE: the server faulted",
        "        # during this invocation and was micro-rebooted; resync the",
        "        # epoch and redo",
        "        if __ret is FAULT:",
        "            self.fault_update(kernel, thread)",
        "            self.stats['redos'] += 1",
        "            continue",
    ]


def _meta_update_lines(
    ctx: Context, indent: str, ret_var: str, by_position: bool
) -> List[str]:
    """The per-function tracking *policy*, emitted as explicit code.

    ``by_position`` selects how arguments are referenced: by name (inside
    the stub method, where parameters are in scope) or as ``args[i]``
    (inside the wakeup-completion method, which receives a tuple).
    """
    ir, fn = ctx.ir, ctx.fn
    lines: List[str] = []
    if ir.sm.changes_state(fn.name):
        lines.append(f"{indent}__entry.state = {fn.name!r}")
    if fn.name in ir.sm.sticky_fns:
        lines.append(
            f"{indent}__entry.meta['_owner'] = thread.tid"
            "  # principal for replays"
        )
    for index, name in fn.tracked:
        source = f"args[{index}]" if by_position else fn.param_names[index]
        lines.append(f"{indent}__entry.meta[{name!r}] = {source}")
    if fn.ret_track is not None:
        name, mode = fn.ret_track
        if mode == "add":
            lines.append(
                f"{indent}__entry.meta[{name!r}] = ("
                f"__entry.meta.get({name!r}, 0)"
            )
            lines.append(
                f"{indent}    + (len({ret_var}) if isinstance({ret_var}, "
                f"(bytes, str)) else {ret_var}))"
            )
        else:
            lines.append(
                f"{indent}if not isinstance({ret_var}, (bytes, str)):"
            )
            lines.append(f"{indent}    __entry.meta[{name!r}] = {ret_var}")
    return lines


def t_track_create(ctx: Context) -> List[str]:
    fn = ctx.fn
    lines = [
        "        # [T-track-create] cli_if_track: allocate the tracking",
        "        # structure and record the creation-time meta-data",
        f"        __entry = self.new_entry(kernel, thread, __ret, {fn.name!r})",
    ]
    for index, name in fn.tracked:
        lines.append(
            f"        __entry.meta[{name!r}] = {fn.param_names[index]}"
        )
    if fn.parent_index is not None:
        parent_name = fn.param_names[fn.parent_index]
        lines += [
            "        # raw parent argument: replays of parentless (e.g.",
            "        # root-relative) creations need the original value",
            f"        __entry.meta[{parent_name!r}] = {parent_name}",
            f"        self.link_parent_arg(__entry, {parent_name})",
        ]
    if fn.ret_track is not None:
        name, mode = fn.ret_track
        if mode == "add":
            lines.append(
                f"        __entry.meta[{name!r}] = "
                f"__entry.meta.get({name!r}, 0) + __ret"
            )
        else:
            lines.append(f"        __entry.meta[{name!r}] = __ret")
    lines += [
        "        self.track_trace(kernel, thread, __entry, stores=3,",
        "                         label='track_create')",
        "        return __entry.cdesc",
    ]
    return lines


def t_track_terminal(ctx: Context) -> List[str]:
    return [
        "        # [T-track-terminal] descriptor termination: tear down the",
        "        # tracking structure (and the subtree under D0 semantics)",
        "        if __entry is not None:",
        "            self.note_terminated(kernel, thread, __entry)",
        "        return __ret",
    ]


def t_track_update(ctx: Context) -> List[str]:
    lines = [
        "        # [T-track-update] cli_if_track: state transition + tracked",
        "        # meta-data update (bounded, no operation log)",
        "        if __entry is not None:",
    ]
    body = _meta_update_lines(ctx, "            ", "__ret", by_position=False)
    if not body:
        body = ["            pass  # nothing tracked for this function"]
    lines += body
    lines += [
        "            self.track_trace(kernel, thread, __entry,",
        "                             label='track_update')",
        "        return __ret",
    ]
    return lines


def t_unblock_method(ctx: Context) -> List[str]:
    """Completion tracking for blocking functions (runs on the woken
    thread; see Kernel._unpark)."""
    fn = ctx.fn
    lines = [
        "",
        f"def unblock_{fn.name}(self, kernel, thread, args, value):",
        f'    """Generated wakeup-completion tracking for {fn.name}."""',
        f"    __entry = self.table.lookup(args[{fn.desc_index}])",
        "    if __entry is None:",
        "        return value",
    ]
    lines += _meta_update_lines(ctx, "    ", "value", by_position=True)
    lines += [
        "    self.track_trace(kernel, thread, __entry, label='track_unblock')",
        "    return value",
    ]
    return lines


#: The ordered client-side template network.  Order matters: it is the
#: composition order inside each generated method.
CLIENT_TEMPLATES: List[Template] = [
    Template("signature", "fn_any", t_signature),
    Template("desc-lookup", "fn_has_desc", t_desc_lookup),
    Template("no-desc", "fn_creation", t_no_desc),
    Template("parent-lookup", "fn_has_parent_param", t_parent_lookup),
    Template("d1-parent-recover", "mech_d1_create", t_d1_parent_recover),
    Template("d0-children", "mech_d0_terminal", t_d0_children),
    Template("redo-open", "fn_any", t_redo_open),
    Template("t1-ondemand", "fn_has_desc", t_t1_ondemand),
    Template("invoke", "fn_any", t_invoke),
    Template("block-passthrough", "fn_block", t_block_passthrough),
    Template("einval-retry", "fn_has_desc_or_parent", t_einval_retry),
    Template("fault-update", "fn_any", t_fault_update),
    Template("track-create", "fn_creation", t_track_create),
    Template("track-terminal", "fn_terminal", t_track_terminal),
    Template("track-update", "fn_plain", t_track_update),
    Template("track-update-readonly", "fn_readonly", t_track_update),
    Template("track-update-block", "fn_block", t_track_update),
    Template("unblock-method", "fn_block", t_unblock_method),
]


# ---------------------------------------------------------------------------
# Server-side templates
# ---------------------------------------------------------------------------

def t_server_header(ctx: Context) -> List[str]:
    return [
        f"class GeneratedServerStub(ServerStubRuntime):",
        f'    """Generated server-side stub for {ctx.ir.name!r}."""',
        "",
        f"    SERVICE = {ctx.ir.name!r}",
    ]


def t_server_plain(ctx: Context) -> List[str]:
    return [
        "",
        "    # [S-plain] local descriptors: dispatch passes straight through",
        "    def dispatch(self, kernel, thread, fn, args):",
        "        return self.component.dispatch(fn, thread, args)",
    ]


def t_server_g0(ctx: Context) -> List[str]:
    return [
        "",
        "    # [S-g0] global descriptors: the inherited dispatch catches",
        "    # EINVAL (InvalidDescriptor), resolves old->new ids through the",
        "    # storage component, upcalls the creating client (U0) to rerun",
        "    # R0, and replays the invocation with the recovered descriptor",
        "    # [S-creator] creation results are recorded in storage so G0",
        "    # can find the creator after a fault",
    ]


def t_server_g1(ctx: Context) -> List[str]:
    return [
        "",
        "    # [S-g1] resource data lives redundantly in the storage",
        "    # component; the service re-fetches it on access after a reboot",
        "    # (storage interactions run inside the service's critical",
        "    # region, closing the non-atomicity race of Section III-C)",
    ]


SERVER_TEMPLATES: List[Template] = [
    Template("server-header", "always", t_server_header),
    Template("server-plain", "model_local", t_server_plain),
    Template("server-g0", "mech_g0_dispatch", t_server_g0),
    Template("server-g1", "mech_g1_service", t_server_g1),
]

#: All predicate-template pairs the back end composes from.
TEMPLATES: List[Template] = CLIENT_TEMPLATES + SERVER_TEMPLATES
