"""SuperGlue compiler: IDL -> interface-driven recovery stubs."""

from repro.core.compiler.codegen import CompiledInterface, SuperGlueCompiler
from repro.core.compiler.ir import FunctionIR, InterfaceIR
from repro.core.compiler.predicates import PREDICATES, evaluate_predicates
from repro.core.compiler.templates import TEMPLATES

__all__ = [
    "CompiledInterface",
    "SuperGlueCompiler",
    "FunctionIR",
    "InterfaceIR",
    "PREDICATES",
    "evaluate_predicates",
    "TEMPLATES",
]
