"""Predicates gating the compiler's code templates (Section IV-B).

"The predicates encode those aspects of the model that map to the recovery
mechanisms"; a template is included in the generated code only if its
predicate evaluates to true for the interface (or interface function) at
hand.  Predicates take ``(ir, fn_ir)`` where ``fn_ir`` may be ``None`` for
interface-level templates.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.core.compiler.ir import FunctionIR, InterfaceIR
from repro.core.model import ParentKind

Predicate = Callable[[InterfaceIR, Optional[FunctionIR]], bool]


def _fn(check):
    """Lift a function-level check; false when no function is in scope."""
    return lambda ir, fn: fn is not None and check(ir, fn)


PREDICATES: Dict[str, Predicate] = {
    # -- interface-level (model) predicates ---------------------------------
    "always": lambda ir, fn: True,
    "model_blocking": lambda ir, fn: ir.model.blocking,
    "model_nonblocking": lambda ir, fn: not ir.model.blocking,
    "model_global": lambda ir, fn: ir.model.desc_global,
    "model_local": lambda ir, fn: not ir.model.desc_global,
    "model_resc_data": lambda ir, fn: ir.model.resource_has_data,
    "model_desc_data": lambda ir, fn: ir.model.desc_has_data,
    "model_parent": lambda ir, fn: ir.model.parent is not ParentKind.SOLO,
    "model_solo": lambda ir, fn: ir.model.parent is ParentKind.SOLO,
    "model_xcparent": lambda ir, fn: ir.model.parent is ParentKind.XCPARENT,
    "model_close_children": lambda ir, fn: ir.model.close_children,
    "model_close_removes": lambda ir, fn: ir.model.close_removes_dependency,
    "has_restores": lambda ir, fn: bool(ir.sm.restores),
    # -- function-level predicates ------------------------------------------
    "fn_any": _fn(lambda ir, fn: True),
    "fn_creation": _fn(lambda ir, fn: fn.is_creation),
    "fn_not_creation": _fn(lambda ir, fn: not fn.is_creation),
    "fn_terminal": _fn(lambda ir, fn: fn.is_terminal),
    "fn_block": _fn(lambda ir, fn: fn.is_block),
    "fn_wakeup": _fn(lambda ir, fn: fn.is_wakeup),
    "fn_readonly": _fn(lambda ir, fn: fn.is_readonly),
    "fn_sticky": _fn(lambda ir, fn: fn.name in ir.sm.sticky_fns),
    "fn_has_desc": _fn(lambda ir, fn: fn.desc_index is not None),
    "fn_has_desc_or_parent": _fn(
        lambda ir, fn: fn.desc_index is not None or fn.parent_index is not None
    ),
    "fn_has_parent_param": _fn(lambda ir, fn: fn.parent_index is not None),
    "fn_has_principal": _fn(lambda ir, fn: fn.principal_index is not None),
    "fn_tracks_params": _fn(lambda ir, fn: bool(fn.tracked)),
    "fn_tracks_retval": _fn(lambda ir, fn: fn.ret_track is not None),
    "fn_retval_add": _fn(
        lambda ir, fn: fn.ret_track is not None and fn.ret_track[1] == "add"
    ),
    "fn_plain": _fn(
        lambda ir, fn: not (
            fn.is_creation or fn.is_terminal or fn.is_block or fn.is_readonly
        )
    ),
    # -- combined (mechanism) predicates -------------------------------------
    "mech_t0": lambda ir, fn: ir.model.needs_eager_wakeup,
    "mech_d0_terminal": _fn(
        lambda ir, fn: fn.is_terminal and ir.model.close_children
    ),
    "mech_d1_create": _fn(
        lambda ir, fn: fn.is_creation
        and fn.parent_index is not None
        and ir.model.needs_parent_ordering
    ),
    "mech_g0_dispatch": lambda ir, fn: ir.model.needs_storage_descriptors,
    "mech_g1_service": lambda ir, fn: ir.model.needs_storage_data,
    "mech_u0_creator": lambda ir, fn: ir.model.needs_upcalls,
}


def evaluate_predicates(ir: InterfaceIR) -> Dict[str, bool]:
    """Interface-level predicate truth table (fn-level ones use any-fn)."""
    out: Dict[str, bool] = {}
    fns = list(ir.functions.values())
    for name, predicate in PREDICATES.items():
        if name.startswith(("fn_", "mech_d0", "mech_d1")):
            out[name] = any(predicate(ir, fn) for fn in fns)
        else:
            out[name] = predicate(ir, None)
    return out
