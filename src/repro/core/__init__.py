"""SuperGlue: the paper's primary contribution.

An interface definition language (IDL), a compiler that synthesises
interface-driven recovery stubs from declarative specifications, and the
runtime those stubs plug into.

Public API:

* :func:`repro.core.idl.parse_idl` — parse a SuperGlue IDL source string.
* :class:`repro.core.compiler.SuperGlueCompiler` — compile an interface
  specification into client/server stub code.
* :class:`repro.core.runtime.recovery.RecoveryManager` — orchestrates
  micro-reboot recovery (steps 1-9 of Section III-D).
"""

from repro.core.model import DescriptorResourceModel, ParentKind
from repro.core.state_machine import DescriptorStateMachine, FAULT_STATE, INIT_STATE

__all__ = [
    "DescriptorResourceModel",
    "ParentKind",
    "DescriptorStateMachine",
    "FAULT_STATE",
    "INIT_STATE",
]
