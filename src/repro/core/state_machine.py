"""Descriptor state machines (Section III-B, Equation 2).

``SM = (I, S, sigma, s0, s_f)``

States are implicit, as in the paper: a descriptor's state is identified
by the last state-changing interface function applied to it.  The machine
is built from the IDL's ``sm_transition(a, b)`` declarations ("after a, b
may follow") plus the function classes:

* creation (``I^create``) — returns a fresh descriptor in ``s0``;
* terminal (``I^terminate``) — destroys the descriptor;
* block / wakeup (``I^block`` / ``I^wakeup``) — blocking semantics, which
  drive the eager/on-demand recovery choice (T0/T1);
* read-only — functions that only read or move *tracked data* without
  changing the state (they never become a descriptor's expected state);
* restore — functions replayed during recovery purely to restore tracked
  data (e.g. ``tseek`` restores a file offset; ``evt_trigger`` replays
  pending triggers).

Recovery (R0) computes the *shortest walk* from ``s0`` to the expected
state through non-blocking, non-read-only transitions (BFS), then appends
the restore functions.  Blocked descriptors re-block through the stub's
redo of the original blocking invocation rather than through the walk.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import IDLValidationError, RecoveryError

#: The initial state a descriptor is in right after creation.
INIT_STATE = "<s0>"

#: The fault state every state implicitly transitions to on server failure.
FAULT_STATE = "<fault>"


class RestoreSpec:
    """A data-restoring replay step appended to every recovery walk.

    ``counter`` optionally names a tracked meta-datum whose value gives the
    replay count (e.g. pending event triggers); ``None`` means replay once.
    """

    __slots__ = ("fn", "counter")

    def __init__(self, fn: str, counter: Optional[str] = None):
        self.fn = fn
        self.counter = counter

    def __repr__(self):
        return f"RestoreSpec({self.fn!r}, counter={self.counter!r})"


class DescriptorStateMachine:
    """The explicit form of a service's implicit descriptor state machine."""

    def __init__(
        self,
        functions: Sequence[str],
        transitions: Sequence[Tuple[str, str]],
        creation_fns: Sequence[str],
        terminal_fns: Sequence[str],
        block_fns: Sequence[str] = (),
        wakeup_fns: Sequence[str] = (),
        readonly_fns: Sequence[str] = (),
        restores: Sequence[RestoreSpec] = (),
        sticky_fns: Sequence[str] = (),
    ):
        self.functions: List[str] = list(functions)
        self.transitions: Set[Tuple[str, str]] = set(transitions)
        self.creation_fns: Set[str] = set(creation_fns)
        self.terminal_fns: Set[str] = set(terminal_fns)
        self.block_fns: Set[str] = set(block_fns)
        self.wakeup_fns: Set[str] = set(wakeup_fns)
        self.readonly_fns: Set[str] = set(readonly_fns)
        self.restores: List[RestoreSpec] = list(restores)
        #: Sticky functions: possibly-blocking functions whose *completion*
        #: leaves durable server state the walk must re-establish by
        #: replaying them (e.g. ``lock_take`` leaves an owner).  Replays
        #: run against a freshly rebooted server, so they complete without
        #: blocking.
        self.sticky_fns: Set[str] = set(sticky_fns)
        self._walk_cache: Dict[str, List[str]] = {}

    # ------------------------------------------------------------------
    def validate(self) -> None:
        known = set(self.functions)
        for a, b in self.transitions:
            if a not in known or b not in known:
                raise IDLValidationError(
                    f"transition ({a}, {b}) references unknown function"
                )
        for group_name, group in (
            ("creation", self.creation_fns),
            ("terminal", self.terminal_fns),
            ("block", self.block_fns),
            ("wakeup", self.wakeup_fns),
            ("readonly", self.readonly_fns),
            ("sticky", self.sticky_fns),
        ):
            for fn in group:
                if fn not in known:
                    raise IDLValidationError(
                        f"{group_name} function {fn!r} is not in the interface"
                    )
        if not self.creation_fns:
            raise IDLValidationError("interface declares no creation function")
        for restore in self.restores:
            if restore.fn not in known:
                raise IDLValidationError(
                    f"restore function {restore.fn!r} is not in the interface"
                )
        # Every non-creation, non-readonly function should be reachable,
        # otherwise its state could never be recovered.
        for fn in self.functions:
            if fn in self.creation_fns or fn in self.readonly_fns:
                continue
            if fn in self.terminal_fns:
                continue
            if fn in self.block_fns and fn not in self.sticky_fns:
                continue
            if self.walk_to(fn) is None:
                raise IDLValidationError(
                    f"state after {fn!r} is unreachable from s0; "
                    f"recovery would be impossible"
                )

    # ------------------------------------------------------------------
    def states(self) -> Set[str]:
        """The implicit state set: s0 plus one state per state-changing fn."""
        out = {INIT_STATE, FAULT_STATE}
        for fn in self.functions:
            if self.changes_state(fn):
                out.add(fn)
        return out

    def changes_state(self, fn: str) -> bool:
        """Whether applying ``fn`` moves the descriptor to a new state."""
        if fn in self.readonly_fns:
            return False
        if fn in self.block_fns and fn not in self.sticky_fns:
            # Pure blocking is re-established via redo of the parked
            # thread's invocation, not tracked as a descriptor state.
            return False
        return True

    def sigma(self, state: str, fn: str) -> Optional[str]:
        """The transition function: next state, or None if invalid."""
        if fn in self.creation_fns and state in (INIT_STATE, FAULT_STATE):
            # s0 *is* the state right after creation.
            return INIT_STATE
        source = self._transition_source(state)
        if (source, fn) in self.transitions:
            return fn if self.changes_state(fn) else state
        return None

    def _transition_source(self, state: str) -> str:
        if state == INIT_STATE:
            # s0 is the state after any creation function.
            for fn in self.creation_fns:
                return fn
        return state

    def valid_next(self, state: str) -> Set[str]:
        source = self._transition_source(state)
        return {b for (a, b) in self.transitions if a == source}

    # ------------------------------------------------------------------
    def walk_to(self, expected_state: str) -> Optional[List[str]]:
        """Shortest function sequence from ``s0`` to ``expected_state``.

        This is the paper's precomputed walk through the state machine
        (Section III-B, R0), excluding the creation function itself (the
        stub always begins by re-invoking creation) and avoiding blocking
        and read-only functions.  Returns None if unreachable.
        """
        if expected_state in self._walk_cache:
            return list(self._walk_cache[expected_state])
        start_states = {fn for fn in self.creation_fns}
        if expected_state == INIT_STATE or expected_state in start_states:
            self._walk_cache[expected_state] = []
            return []
        # BFS over (state) nodes; edges labelled by functions.
        queue = deque((s, []) for s in start_states)
        visited = set(start_states)
        while queue:
            state, path = queue.popleft()
            for a, b in self.transitions:
                if a != state:
                    continue
                if b in self.block_fns and b not in self.sticky_fns:
                    continue
                if b in self.readonly_fns or b in self.terminal_fns:
                    continue
                if b in visited:
                    continue
                next_path = path + [b]
                if b == expected_state:
                    self._walk_cache[expected_state] = next_path
                    return list(next_path)
                visited.add(b)
                queue.append((b, next_path))
        return None

    def recovery_walk(
        self, expected_state: str, creation_fn: Optional[str] = None
    ) -> List[str]:
        """Full R0 walk: creation then intermediate transitions.

        The returned list is function names to re-invoke, in order.
        ``creation_fn`` selects which creation function made the descriptor
        (interfaces like the memory manager have several).  The restore
        steps (data-only replays, :attr:`restores`) are appended by the
        stub at replay time with counts resolved from tracked meta-data.
        """
        if creation_fn is None:
            creation = sorted(self.creation_fns)[0]
        elif creation_fn not in self.creation_fns:
            raise RecoveryError(f"{creation_fn!r} is not a creation function")
        else:
            creation = creation_fn
        tail = self.walk_to(expected_state)
        if tail is None:
            raise RecoveryError(
                f"no recovery path from s0 to state {expected_state!r}"
            )
        return [creation] + tail

    def __repr__(self):
        return (
            f"DescriptorStateMachine(functions={self.functions}, "
            f"transitions={sorted(self.transitions)})"
        )
