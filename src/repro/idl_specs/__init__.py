"""The SuperGlue IDL specifications for the six system services.

These are the declarative inputs whose line counts Fig. 6(c) compares with
the generated stub code and with C^3's hand-written stubs.
"""

from __future__ import annotations

import os
from typing import Dict, List

_HERE = os.path.dirname(os.path.abspath(__file__))

#: The six fault-injection target services of the evaluation (Section V-B).
SERVICES: List[str] = ["sched", "mm", "ramfs", "lock", "event", "timer"]


def idl_path(service: str) -> str:
    return os.path.join(_HERE, f"{service}.idl")


def load_idl(service: str) -> str:
    """Return the IDL source text for one service."""
    with open(idl_path(service), "r", encoding="utf-8") as handle:
        return handle.read()


def load_all() -> Dict[str, str]:
    return {service: load_idl(service) for service in SERVICES}
