"""Benchmark workloads (Section V-B)."""

from repro.workloads.microbench import (
    WORKLOADS,
    RunHandle,
    Workload,
    workload_for,
)

__all__ = ["WORKLOADS", "RunHandle", "Workload", "workload_for"]
