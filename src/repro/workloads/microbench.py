"""The six micro-benchmark workloads of Section V-B.

* **Sched** — two threads ping-pong, blocking and waking each other with
  ``sched_blk``/``sched_wakeup``.
* **MM** — a thread is granted pages, aliases them into a different
  component, then revokes them (removing all aliases).
* **FS** — a file is opened, a byte written, read back, and closed.
* **Lock** — one thread holds a lock another contends; release hands off.
* **Event** — a thread blocks waiting for an event that another thread
  triggers from a *different* component.
* **Timer** — a thread wakes up, then blocks for a period, periodically.

Each workload installs generator-bodied threads into a built system and
returns a :class:`RunHandle` whose :meth:`RunHandle.check` verifies the
run "abides by the workload specification" — the paper's criterion for a
*successful* recovery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.composite.thread import Invoke, Yield


@dataclass
class RunHandle:
    """Results and correctness checking for one installed workload run."""

    workload: "Workload"
    system: object
    results: Dict[str, object] = field(default_factory=dict)
    iterations: int = 3

    def check(self) -> bool:
        # A run that exhausted its step budget did not complete the
        # workload, even if the partial results happen to look right —
        # without this, a livelocked run is indistinguishable from a
        # clean completion.
        if self.budget_exhausted:
            return False
        return self.workload.check(self.results, self.system, self.iterations)

    @property
    def budget_exhausted(self) -> bool:
        kernel = getattr(self.system, "kernel", None)
        return bool(kernel is not None and kernel.budget_exhausted)


class Workload:
    """Base class: named workload targeting one service."""

    name = "?"
    service = "?"

    def install(self, system, iterations: int = 3) -> RunHandle:
        handle = RunHandle(workload=self, system=system, iterations=iterations)
        self._spawn(system, handle.results, iterations)
        return handle

    def _spawn(self, system, results, iterations) -> None:
        raise NotImplementedError

    def check(self, results, system, iterations) -> bool:
        raise NotImplementedError


# ---------------------------------------------------------------------------
class SchedWorkload(Workload):
    name = "sched"
    service = "sched"

    def _spawn(self, system, results, iterations):
        def ping(sys_, thread):
            tid_a = yield Invoke("sched", "sched_register", "app0")
            results["tid_a"] = tid_a
            while "tid_b" not in results:
                yield Yield()
            tid_b = results["tid_b"]
            for __ in range(iterations):
                yield Invoke("sched", "sched_wakeup", "app0", tid_b)
                yield Invoke("sched", "sched_blk", "app0", tid_a)
                results["pings"] = results.get("pings", 0) + 1

        def pong(sys_, thread):
            tid_b = yield Invoke("sched", "sched_register", "app0")
            results["tid_b"] = tid_b
            while "tid_a" not in results:
                yield Yield()
            tid_a = results["tid_a"]
            for __ in range(iterations):
                yield Invoke("sched", "sched_blk", "app0", tid_b)
                yield Invoke("sched", "sched_wakeup", "app0", tid_a)
                results["pongs"] = results.get("pongs", 0) + 1

        system.kernel.create_thread("ping", prio=5, home="app0", body_factory=ping)
        system.kernel.create_thread("pong", prio=5, home="app0", body_factory=pong)

    def check(self, results, system, iterations):
        return (
            results.get("pings") == iterations
            and results.get("pongs") == iterations
        )


# ---------------------------------------------------------------------------
class MMWorkload(Workload):
    name = "mm"
    service = "mm"

    BASE_VA = 0x0040_0000
    ALIAS_VA = 0x0080_0000
    PAGE = 0x1000

    def _spawn(self, system, results, iterations):
        def body(sys_, thread):
            done = 0
            for i in range(iterations):
                va = self.BASE_VA + i * self.PAGE
                dst = self.ALIAS_VA + i * self.PAGE
                got = yield Invoke("mm", "mman_get_page", "app0", va)
                if got != va:
                    results["error"] = f"get_page returned {got:#x}"
                    return
                aliased = yield Invoke(
                    "mm", "mman_alias_page", "app0", va, "app1", dst
                )
                if aliased != dst:
                    results["error"] = f"alias_page returned {aliased:#x}"
                    return
                released = yield Invoke("mm", "mman_release_page", "app0", va)
                if released != 0:
                    results["error"] = f"release_page returned {released}"
                    return
                done += 1
                results["rounds"] = done

        system.kernel.create_thread("mm-user", prio=5, home="app0", body_factory=body)

    def check(self, results, system, iterations):
        mm = system.kernel.component("mm")
        return (
            "error" not in results
            and results.get("rounds") == iterations
            and len(mm.mappings) == 0
        )


# ---------------------------------------------------------------------------
class FSWorkload(Workload):
    name = "fs"
    service = "ramfs"

    def _spawn(self, system, results, iterations):
        def body(sys_, thread):
            done = 0
            for i in range(iterations):
                fd = yield Invoke("ramfs", "tsplit", "app0", 1, f"bench{i}.dat")
                payload = bytes([0x41 + (i % 26)])
                wrote = yield Invoke("ramfs", "twrite", "app0", fd, payload)
                if wrote != 1:
                    results["error"] = f"twrite returned {wrote}"
                    return
                yield Invoke("ramfs", "tseek", "app0", fd, 0)
                data = yield Invoke("ramfs", "tread", "app0", fd, 1)
                if data != payload:
                    results["error"] = f"tread returned {data!r} != {payload!r}"
                    return
                closed = yield Invoke("ramfs", "trelease", "app0", fd)
                if closed != 0:
                    results["error"] = f"trelease returned {closed}"
                    return
                done += 1
                results["rounds"] = done

        system.kernel.create_thread("fs-user", prio=5, home="app0", body_factory=body)

    def check(self, results, system, iterations):
        return "error" not in results and results.get("rounds") == iterations


# ---------------------------------------------------------------------------
class LockWorkload(Workload):
    name = "lock"
    service = "lock"

    def _spawn(self, system, results, iterations):
        def holder(sys_, thread):
            lid = yield Invoke("lock", "lock_alloc", "app0")
            results["lid"] = lid
            for __ in range(iterations):
                taken = yield Invoke("lock", "lock_take", "app0", lid)
                if taken != 0:
                    results["error"] = f"holder take returned {taken}"
                    return
                # Let the contender run and block on the lock.
                yield Yield()
                yield Yield()
                released = yield Invoke("lock", "lock_release", "app0", lid)
                if released != 0:
                    results["error"] = f"holder release returned {released}"
                    return
                results["held"] = results.get("held", 0) + 1
                # Let the contender acquire and release before next round.
                yield Yield()
                yield Yield()

        def contender(sys_, thread):
            while "lid" not in results:
                yield Yield()
            lid = results["lid"]
            for __ in range(iterations):
                taken = yield Invoke("lock", "lock_take", "app0", lid)
                if taken != 0:
                    results["error"] = f"contender take returned {taken}"
                    return
                released = yield Invoke("lock", "lock_release", "app0", lid)
                if released != 0:
                    results["error"] = f"contender release returned {released}"
                    return
                results["contended"] = results.get("contended", 0) + 1

        system.kernel.create_thread(
            "holder", prio=5, home="app0", body_factory=holder
        )
        system.kernel.create_thread(
            "contender", prio=5, home="app0", body_factory=contender
        )

    def check(self, results, system, iterations):
        return (
            "error" not in results
            and results.get("held") == iterations
            and results.get("contended") == iterations
        )


# ---------------------------------------------------------------------------
class EventWorkload(Workload):
    name = "event"
    service = "event"

    def _spawn(self, system, results, iterations):
        def waiter(sys_, thread):
            evtid = yield Invoke("event", "evt_split", "app0", 0, 1)
            results["evtid"] = evtid
            for __ in range(iterations):
                waited = yield Invoke("event", "evt_wait", "app0", evtid)
                if waited != 0:
                    results["error"] = f"evt_wait returned {waited}"
                    return
                results["waits"] = results.get("waits", 0) + 1
            yield Invoke("event", "evt_free", "app0", evtid)
            results["freed"] = True

        def trigger(sys_, thread):
            # Triggers come from a *different* component (global descriptor).
            while "evtid" not in results:
                yield Yield()
            evtid = results["evtid"]
            for __ in range(iterations):
                triggered = yield Invoke("event", "evt_trigger", "app1", evtid)
                if triggered != 0:
                    results["error"] = f"evt_trigger returned {triggered}"
                    return
                results["triggers"] = results.get("triggers", 0) + 1
                yield Yield()

        system.kernel.create_thread(
            "evt-wait", prio=5, home="app0", body_factory=waiter
        )
        system.kernel.create_thread(
            "evt-trig", prio=5, home="app1", body_factory=trigger
        )

    def check(self, results, system, iterations):
        return (
            "error" not in results
            and results.get("waits") == iterations
            and results.get("triggers") == iterations
        )


# ---------------------------------------------------------------------------
class TimerWorkload(Workload):
    name = "timer"
    service = "timer"

    PERIOD = 5_000  # cycles

    def _spawn(self, system, results, iterations):
        def body(sys_, thread):
            tmid = yield Invoke("timer", "timer_alloc", "app0", self.PERIOD)
            results["tmid"] = tmid
            for __ in range(iterations):
                blocked = yield Invoke("timer", "timer_block", "app0", tmid)
                if blocked != 0:
                    results["error"] = f"timer_block returned {blocked}"
                    return
                results["wakes"] = results.get("wakes", 0) + 1
            yield Invoke("timer", "timer_free", "app0", tmid)
            results["freed"] = True

        system.kernel.create_thread(
            "periodic", prio=5, home="app0", body_factory=body
        )

    def check(self, results, system, iterations):
        return (
            "error" not in results
            and results.get("wakes") == iterations
            and results.get("freed") is True
        )


#: Registry keyed by the paper's workload names (Section V-B).
WORKLOADS: Dict[str, Workload] = {
    w.name: w
    for w in [
        SchedWorkload(),
        MMWorkload(),
        FSWorkload(),
        LockWorkload(),
        EventWorkload(),
        TimerWorkload(),
    ]
}


def workload_for(service: str) -> Workload:
    """The workload targeting ``service`` (by service component name)."""
    for workload in WORKLOADS.values():
        if workload.service == service:
            return workload
    raise KeyError(service)
