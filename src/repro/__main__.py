"""Command-line entry point: ``python -m repro <command>``.

Commands:

* ``table2 [--faults N] [--mode MODE] [--fault-class CLASS] [--workers N]
  [--resume PATH] [--json PATH] [--trace PATH]`` — the SWIFI campaign
  (Table II), fanned out over a process pool with a resumable JSONL
  journal; ``--fault-class`` selects the fault model (register SEUs,
  memory bit flips, IDL fuzzing, correlated bursts); ``--trace``
  additionally records every run under the flight recorder and exports
  the event journals + metrics as a JSONL trace artifact
* ``trace PATH [--run SEED] [--full] [--validate]`` — render a recorded
  trace artifact: campaign roll-up plus one run's recovery timeline
* ``fig6`` — tracking overhead, recovery overhead, LOC tables (Fig. 6)
* ``fig7 [--requests N] [--seeds N --workers W --json PATH --trace PATH]``
  — web-server throughput (Fig. 7): single-run comparison table by
  default, or a pooled parallel multi-seed faulted campaign with
  latency percentiles when ``--seeds`` is given
* ``cluster [--nodes N] [--faults K] [--fault-class CLASS] [--seeds N]
  [--units U] [--workers W] [--json PATH] [--trace PATH]`` — simulated
  multi-node cluster campaign: each scenario schedules U SWIFI-injected
  workload units over N pooled-System nodes while killing K correlated
  nodes at a seed-drawn instant; the supervisor/scheduler layer fails
  units over, evicts unhealthy nodes, and whole-node-reboots them
* ``compile <service|path.idl>`` — show compiler output for one interface
"""

from __future__ import annotations

import argparse
import os
import sys


def _cmd_table2(args) -> int:
    from repro.swifi.campaign import (
        format_table2,
        run_full_campaign,
        write_table2_json,
    )

    if args.json:
        # Fail on an unwritable artifact path before the campaign runs,
        # not after: a paper-scale run is minutes of work.
        try:
            with open(args.json, "a", encoding="utf-8"):
                pass
        except OSError as exc:
            print(f"cannot write --json {args.json}: {exc}", file=sys.stderr)
            return 1
    if args.trace:
        # The exporter appends one section per service campaign, so the
        # artifact must start empty (and be writable) up front.
        try:
            with open(args.trace, "w", encoding="utf-8"):
                pass
        except OSError as exc:
            print(f"cannot write --trace {args.trace}: {exc}", file=sys.stderr)
            return 1
    print(
        f"SWIFI campaign: {args.faults} {args.fault_class} faults per "
        f"service ({args.mode} stubs, {args.workers} worker(s))"
    )
    results = run_full_campaign(
        n_faults=args.faults,
        ft_mode=args.mode,
        seed=args.seed,
        workers=args.workers,
        journal=args.resume,
        trace=args.trace,
        fault_class=args.fault_class,
    )
    print(format_table2(results))
    setup_wall = sum(r.setup_wall for r in results)
    exec_wall = sum(r.exec_wall for r in results)
    total_runs = sum(r.injected for r in results)
    if exec_wall > 0:
        # stderr: the table on stdout stays deterministic (journal
        # replays must reproduce it byte-for-byte); wall clock is
        # host-dependent diagnostics.
        print(
            f"wall clock: setup {setup_wall:.2f}s + exec {exec_wall:.2f}s "
            f"({total_runs / exec_wall:.0f} runs/s)",
            file=sys.stderr,
        )
    if args.json:
        write_table2_json(results, args.json)
        print(f"wrote {args.json} (+ .timing.json sidecar)")
    if args.trace:
        print(
            f"wrote {args.trace} "
            f"(render with: python -m repro trace {args.trace})"
        )
    return 0


def _cmd_trace(args) -> int:
    from repro.observe.events import EventSchemaError
    from repro.observe.export import load_runs, read_trace
    from repro.observe.timeline import (
        RECOVERY_EVENTS,
        pick_default_run,
        render_rollup,
        render_run_timeline,
    )

    if not os.path.exists(args.path):
        print(f"no such trace artifact: {args.path}", file=sys.stderr)
        return 1
    try:
        if args.validate:
            n_lines = sum(1 for _ in read_trace(args.path, validate=True))
            runs, summaries = load_runs(args.path)
            print(
                f"{args.path}: {n_lines} lines OK "
                f"({len(runs)} runs, {len(summaries)} summaries)"
            )
            return 0
        runs, summaries = load_runs(args.path)
    except EventSchemaError as exc:
        print(f"invalid trace artifact: {exc}", file=sys.stderr)
        return 1
    if not runs and not summaries:
        print(f"{args.path}: empty trace artifact", file=sys.stderr)
        return 1
    print(render_rollup(runs, summaries))
    if args.run is not None:
        selected = [run for run in runs if run["run_seed"] == args.run]
        if not selected:
            print(f"no run with seed {args.run} in {args.path}",
                  file=sys.stderr)
            return 1
        chosen = selected
    else:
        default = pick_default_run(runs)
        chosen = [default] if default is not None else []
    include = None if args.full else RECOVERY_EVENTS
    for run in chosen:
        print()
        print(render_run_timeline(run, include=include))
    return 0


def _cmd_fig6(args) -> int:
    from repro.analysis import (
        measure_recovery_overhead,
        measure_tracking_overhead,
    )
    from repro.analysis.loc import format_loc_table, loc_table
    from repro.idl_specs import SERVICES

    print("Fig 6(a): tracking overhead (us/op)")
    for service in SERVICES:
        sg = measure_tracking_overhead(service, "superglue")
        c3 = measure_tracking_overhead(service, "c3")
        print(
            f"  {service:7s} superglue={sg['per_op_us']:.3f} "
            f"c3={c3['per_op_us']:.3f}"
        )
    print("\nFig 6(b): per-descriptor recovery overhead (us)")
    for service in SERVICES:
        sg = measure_recovery_overhead(service, "superglue", runs=args.runs)
        print(
            f"  {service:7s} mean={sg['mean_us']:.2f} "
            f"stdev={sg['stdev_us']:.2f} (n={sg['samples']}, "
            f"dropped={sg['runs_dropped']})"
        )
    print("\nFig 6(c): lines of code")
    print(format_loc_table(loc_table()))
    return 0


def _cmd_fig7(args) -> int:
    if args.seeds is not None:
        return _cmd_fig7_campaign(args)
    if args.arrivals == "open":
        return _cmd_fig7_openloop(args)
    from repro.webserver.apache_model import ApacheModel
    from repro.webserver.loadgen import run_webserver

    print(f"Web-server benchmark: {args.requests} requests")
    apache = ApacheModel().throughput_rps(args.requests)
    print(f"  apache (model)         {apache:>12,.0f} req/s")
    base = None
    for mode in ("none", "c3", "superglue"):
        result = run_webserver(ft_mode=mode, n_requests=args.requests)
        if mode == "none":
            base = result.throughput_rps
        slowdown = (
            f"  ({100 * (1 - result.throughput_rps / base):.2f}% slowdown)"
            if mode != "none"
            else ""
        )
        print(
            f"  composite {mode:10s} {result.throughput_rps:>12,.0f} "
            f"req/s{slowdown}"
        )
    faulted = run_webserver(
        ft_mode="superglue", n_requests=args.requests,
        with_faults=True, seed=args.seed,
    )
    print(
        f"  superglue + faults     {faulted.throughput_rps:>12,.0f} req/s"
        f"  ({100 * (1 - faulted.throughput_rps / base):.2f}% slowdown; "
        f"{faulted.faults_injected}/{faulted.faults_armed} faults "
        f"delivered/armed, {faulted.reboots} reboots)"
    )
    return 0


def _cmd_fig7_openloop(args) -> int:
    """Single-spec open-loop comparison: clean vs faulted overload."""
    from repro.webserver.arrivals import ArrivalSpec, offered_rps
    from repro.webserver.loadgen import run_webserver
    from repro.composite.scheduler import CYCLES_PER_US

    spec = ArrivalSpec(
        n_requests=args.requests,
        load=args.load,
        phases=args.phases,
        seed=args.arrival_seed,
    )
    schedule = spec.build(("index.html",))
    print(
        f"Open-loop web-server run: {args.requests} requests, "
        f"load {args.load:g} ({args.phases} phases), "
        f"SLO {args.slo_us}us, offered "
        f"{offered_rps(schedule, CYCLES_PER_US):,.0f} req/s"
    )

    def report(label, result):
        line = (
            f"  {label:<18} goodput {result.goodput_rps:>10,.0f} req/s"
            f"  slo {result.slo_ok}/{result.requests}"
            f"  peak queue {result.peak_outstanding}"
        )
        if result.crashed is not None:
            line += f"  [crashed: {result.crashed}]"
        if result.faults_armed:
            line += (
                f"  ({result.faults_injected}/{result.faults_armed} faults, "
                f"{result.reboots} reboots)"
            )
        print(line)

    clean = run_webserver(
        ft_mode=args.mode, arrival_spec=spec, slo_us=args.slo_us
    )
    report("fault-free", clean)
    faulted = run_webserver(
        ft_mode=args.mode, arrival_spec=spec, slo_us=args.slo_us,
        with_faults=True, n_faults=args.faults, seed=args.seed,
        fault_class=args.fault_class, warn_shortfall=False,
    )
    report(f"{args.fault_class} faults", faulted)
    return 0


def _cmd_fig7_campaign(args) -> int:
    """Multi-seed faulted campaign mode (``fig7 --seeds N``)."""
    from repro.webserver.campaign import (
        WebRunSpec,
        format_web_campaign,
        run_webserver_campaign,
        web_run_seeds,
    )

    if args.json:
        # Fail on an unwritable artifact path before running the campaign.
        try:
            with open(args.json, "a", encoding="utf-8"):
                pass
        except OSError as exc:
            print(f"cannot write --json {args.json}: {exc}", file=sys.stderr)
            return 1
    if args.trace:
        # The exporter appends; the artifact must start empty.
        try:
            with open(args.trace, "w", encoding="utf-8"):
                pass
        except OSError as exc:
            print(f"cannot write --trace {args.trace}: {exc}", file=sys.stderr)
            return 1
    try:
        spec = WebRunSpec(
            ft_mode=args.mode,
            n_requests=args.requests,
            concurrency=args.concurrency,
            n_faults=args.faults,
            fault_class=args.fault_class,
            arrivals=args.arrivals,
            load=args.load,
            phases=args.phases,
            slo_us=args.slo_us,
            arrival_seed=args.arrival_seed,
        )
    except ValueError as exc:
        print(f"invalid fig7 spec: {exc}", file=sys.stderr)
        return 1
    # 0 = one worker per CPU, matching the campaign Make targets.
    workers = args.workers or (os.cpu_count() or 1)
    shape = (
        f"open-loop load {args.load:g} ({args.phases})"
        if args.arrivals == "open"
        else f"concurrency {args.concurrency}"
    )
    print(
        f"Fig. 7 campaign: {args.seeds} seeded runs x {args.requests} "
        f"requests, {shape} ({args.mode} stubs, {args.fault_class} "
        f"faults, {workers} worker(s))"
    )
    result = run_webserver_campaign(
        web_run_seeds(args.seed, args.seeds),
        spec,
        workers=workers,
        trace=args.trace,
    )
    print(format_web_campaign(result))
    if result.exec_wall > 0:
        # stderr: stdout stays deterministic across hosts and reruns.
        print(
            f"wall clock: setup {result.setup_wall:.2f}s + "
            f"exec {result.exec_wall:.2f}s "
            f"({len(result.rows) / result.exec_wall:.1f} runs/s)",
            file=sys.stderr,
        )
    if args.json:
        result.write_json(args.json)
        print(f"wrote {args.json} (+ .timing.json sidecar)")
    if args.trace:
        print(
            f"wrote {args.trace} "
            f"(render with: python -m repro trace {args.trace})"
        )
    return 0


def _cmd_cluster(args) -> int:
    from repro.cluster import (
        calibrate_cluster_spec,
        cluster_run_seeds,
        format_cluster_campaign,
        run_cluster_campaign,
    )

    if args.json:
        # Fail on an unwritable artifact path before running the campaign.
        try:
            with open(args.json, "a", encoding="utf-8"):
                pass
        except OSError as exc:
            print(f"cannot write --json {args.json}: {exc}", file=sys.stderr)
            return 1
    if args.trace:
        # The exporter appends; the artifact must start empty.
        try:
            with open(args.trace, "w", encoding="utf-8"):
                pass
        except OSError as exc:
            print(f"cannot write --trace {args.trace}: {exc}", file=sys.stderr)
            return 1
    try:
        spec = calibrate_cluster_spec(
            service=args.service,
            ft_mode=args.mode,
            n_nodes=args.nodes,
            n_kill=args.faults,
            units=args.units,
            fault_class=args.fault_class,
            evict_threshold=args.evict_threshold,
            cooldown=args.cooldown,
        )
    except ValueError as exc:
        print(f"invalid cluster spec: {exc}", file=sys.stderr)
        return 1
    # 0 = one worker per CPU, matching the campaign Make targets.
    workers = args.workers or (os.cpu_count() or 1)
    print(
        f"Cluster campaign: {args.seeds} scenario(s) x {args.units} units "
        f"on {args.nodes} nodes, {args.faults} correlated kill(s), "
        f"{args.fault_class} faults ({args.mode} stubs, {workers} worker(s))"
    )
    result = run_cluster_campaign(
        cluster_run_seeds(args.seed, args.seeds),
        spec,
        workers=workers,
        trace=args.trace,
    )
    print(format_cluster_campaign(result))
    if result.exec_wall > 0:
        # stderr: stdout stays deterministic across hosts and reruns.
        print(
            f"wall clock: setup {result.setup_wall:.2f}s + "
            f"exec {result.exec_wall:.2f}s "
            f"({len(result.rows) / result.exec_wall:.1f} scenarios/s)",
            file=sys.stderr,
        )
    if args.json:
        result.write_json(args.json)
        print(f"wrote {args.json} (+ .timing.json sidecar)")
    if args.trace:
        print(
            f"wrote {args.trace} "
            f"(render with: python -m repro trace {args.trace})"
        )
    return 0


def _cmd_compile(args) -> int:
    from repro.core.compiler import SuperGlueCompiler
    from repro.idl_specs import SERVICES, load_idl

    if args.interface in SERVICES:
        source = load_idl(args.interface)
        name = args.interface
    elif os.path.exists(args.interface):
        with open(args.interface, "r", encoding="utf-8") as handle:
            source = handle.read()
        name = ""
    else:
        print(f"unknown interface {args.interface!r}", file=sys.stderr)
        return 1
    compiled = SuperGlueCompiler().compile_source(source, name=name)
    ir = compiled.ir
    print(f"interface     : {ir.name}")
    print(f"IDL LOC       : {compiled.idl_loc}")
    print(f"generated LOC : {compiled.generated_loc}")
    print(f"mechanisms    : {', '.join(ir.mechanisms())}")
    print(f"functions     : {', '.join(ir.functions)}")
    print(f"tracked meta  : {', '.join(ir.meta_names())}")
    if args.show_source:
        print("\n" + compiled.client_source)
        print("\n" + compiled.server_source)
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="SuperGlue (DSN 2016) reproduction driver",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("table2", help="SWIFI fault-injection campaign")
    p.add_argument("--faults", type=int, default=100)
    p.add_argument("--mode", choices=("superglue", "c3"), default="superglue")
    p.add_argument(
        "--fault-class",
        choices=("reg", "mem", "idl", "burst"),
        default="reg",
        help="fault model: register SEUs (default), memory-image bit "
        "flips, IDL-boundary fuzzing, or correlated bursts",
    )
    p.add_argument("--seed", type=int, default=1)
    p.add_argument(
        "--workers",
        type=int,
        default=os.cpu_count() or 1,
        help="process-pool size (default: all CPUs)",
    )
    p.add_argument(
        "--resume",
        metavar="PATH",
        default=None,
        help="JSONL journal: checkpoint completed runs and resume from it",
    )
    p.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write the Table II rows as a JSON artifact",
    )
    p.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="record every run under the flight recorder and export the "
        "event journals + metrics to this JSONL trace artifact",
    )
    p.set_defaults(fn=_cmd_table2)

    p = sub.add_parser("trace", help="render a flight-recorder artifact")
    p.add_argument("path", help="JSONL trace artifact (from table2 --trace)")
    p.add_argument(
        "--run",
        type=int,
        metavar="SEED",
        default=None,
        help="render the timeline for this run seed (default: the most "
        "interesting recovery arc)",
    )
    p.add_argument(
        "--full",
        action="store_true",
        help="include every event (default: recovery-relevant events only)",
    )
    p.add_argument(
        "--validate",
        action="store_true",
        help="validate every line against the event schema and exit",
    )
    p.set_defaults(fn=_cmd_trace)

    p = sub.add_parser("fig6", help="overhead + LOC tables")
    p.add_argument("--runs", type=int, default=20)
    p.set_defaults(fn=_cmd_fig6)

    p = sub.add_parser("fig7", help="web-server throughput")
    p.add_argument("--requests", type=int, default=1000)
    p.add_argument("--seed", type=int, default=3)
    p.add_argument(
        "--seeds",
        type=int,
        metavar="N",
        default=None,
        help="campaign mode: N seeded faulted runs through the pooled "
        "parallel campaign engine (default: single-run comparison table)",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="campaign mode: process-pool size "
        "(default: 1, in-process; 0 = one per CPU)",
    )
    p.add_argument(
        "--mode", choices=("none", "c3", "superglue"), default="superglue",
        help="campaign mode: stub flavor (default: superglue)",
    )
    p.add_argument(
        "--concurrency", type=int, default=10,
        help="campaign mode: max outstanding requests (ab -c; default 10)",
    )
    p.add_argument(
        "--faults", type=int, default=3,
        help="campaign mode: SWIFI faults armed per run (default 3)",
    )
    p.add_argument(
        "--fault-class",
        choices=("reg", "mem", "idl", "burst"),
        default="reg",
        help="SWIFI fault model for faulted runs (default: register SEUs)",
    )
    p.add_argument(
        "--arrivals",
        choices=("closed", "open"),
        default="closed",
        help="closed = ab-style bounded concurrency; open = requests "
        "arrive on a virtual-time Poisson schedule regardless of "
        "backlog (heavy-tailed sizes, SLO-scored)",
    )
    p.add_argument(
        "--load", type=float, default=1.0,
        help="open arrivals: offered-load multiplier; 1.0 offers about "
        "one virtual CPU of service demand (default 1.0)",
    )
    p.add_argument(
        "--phases", default="steady",
        help="open arrivals: phase schedule - steady, burst, diurnal, "
        "or name:frac@rate,... (default steady)",
    )
    p.add_argument(
        "--slo-us", type=int, default=500,
        help="open arrivals: arrival-to-response deadline in virtual "
        "microseconds (default 500)",
    )
    p.add_argument(
        "--arrival-seed", type=int, default=0,
        help="open arrivals: seed of the arrival schedule itself "
        "(shared by every run seed; default 0)",
    )
    p.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="campaign mode: write rows + aggregate as a JSON artifact",
    )
    p.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="campaign mode: record runs under the flight recorder and "
        "export a JSONL trace artifact",
    )
    p.set_defaults(fn=_cmd_fig7)

    p = sub.add_parser(
        "cluster", help="simulated multi-node cluster campaign"
    )
    p.add_argument(
        "--nodes", type=int, default=4,
        help="simulated nodes per cell (default 4)",
    )
    p.add_argument(
        "--faults", type=int, default=1,
        help="correlated node kills per scenario (default 1; 0 disables "
        "the kill round)",
    )
    p.add_argument(
        "--fault-class",
        choices=("reg", "mem", "idl", "burst"),
        default="reg",
        help="per-unit SWIFI fault model (default: register SEUs)",
    )
    p.add_argument(
        "--seeds", type=int, default=16,
        help="seeded scenarios to run (default 16)",
    )
    p.add_argument(
        "--units", type=int, default=12,
        help="workload units scheduled per scenario (default 12)",
    )
    p.add_argument("--service", default="lock")
    p.add_argument(
        "--mode", choices=("superglue", "c3"), default="superglue"
    )
    p.add_argument("--seed", type=int, default=7)
    p.add_argument(
        "--evict-threshold", type=int, default=2,
        help="fatal outcomes before the supervisor evicts a node "
        "(default 2)",
    )
    p.add_argument(
        "--cooldown", type=int, default=2,
        help="units an evicted node sits out before rejoining (default 2)",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-pool size (default: 1, in-process; 0 = one per CPU)",
    )
    p.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write scenario rows + aggregate as a JSON artifact",
    )
    p.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="record node-level events (kills, failovers, evictions, "
        "reboots) and export a JSONL trace artifact",
    )
    p.set_defaults(fn=_cmd_cluster)

    p = sub.add_parser("compile", help="compile one IDL interface")
    p.add_argument("interface", help="service name or path to an .idl file")
    p.add_argument("--show-source", action="store_true")
    p.set_defaults(fn=_cmd_compile)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
