"""Exception hierarchy for the SuperGlue reproduction.

Three families of exceptions exist:

* Simulation-level errors (:class:`ReproError` subclasses that indicate a bug
  or misuse of the library itself).
* Simulated hardware/OS faults (:class:`SimulatedFault` subclasses).  These
  model the *fail-stop* faults of the paper's fault model (Section II-A): a
  transient fault corrupts state and is detected, stopping execution of the
  faulty component.
* Control-flow signals (:class:`BlockThread`), which are not errors at all but
  use the exception machinery to unwind a synchronous invocation when a
  thread must block inside a server component.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-level errors."""


class ConfigurationError(ReproError):
    """A system was wired together inconsistently."""


class CapabilityError(ReproError):
    """A component invoked an interface it holds no capability for."""


class IDLError(ReproError):
    """Base class for IDL front-end errors."""


class IDLSyntaxError(IDLError):
    """The IDL source text could not be parsed."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class IDLValidationError(IDLError):
    """The IDL parsed but describes an inconsistent model."""


class CompileError(ReproError):
    """The SuperGlue compiler could not generate stub code."""


class RecoveryError(ReproError):
    """Interface-driven recovery could not restore a consistent state."""


# ---------------------------------------------------------------------------
# Simulated faults (fail-stop model)
# ---------------------------------------------------------------------------

class SimulatedFault(Exception):
    """A detected fault inside a simulated component (fail-stop).

    Attributes:
        component: name of the component the fault was detected in.
        recoverable: whether the booter can micro-reboot and recover, or the
            whole system must be rebooted (e.g. the exception path itself was
            destroyed by a corrupted stack pointer).
    """

    kind = "fault"

    #: Filled in by the trace engines when the fault unwinds a trace
    #: execution: virtual cycles consumed up to (and including) the
    #: faulting micro-op, and that op's index.  ``None`` for faults
    #: raised outside trace execution — the caller then falls back to
    #: its conservative whole-trace estimate.
    cycles_consumed = None
    op_index = None

    def __init__(self, message: str, component: str = "?", recoverable: bool = True):
        super().__init__(message)
        self.component = component
        self.recoverable = recoverable


class SegmentationFault(SimulatedFault):
    """A load or store hit an address outside the component's memory."""

    kind = "segfault"


class AssertionFault(SimulatedFault):
    """A consistency assertion inside a component failed (corrupt state)."""

    kind = "assertion"


class CorruptionDetected(SimulatedFault):
    """A magic-word check found a corrupted record in component memory."""

    kind = "corruption"


class SystemHang(SimulatedFault):
    """A corrupted loop bound made the component spin past its cycle budget.

    Hangs are *latent* faults (C'MON terminology); the campaign classifies
    them as "not recovered (other reason)".
    """

    kind = "hang"

    def __init__(self, message: str, component: str = "?"):
        super().__init__(message, component, recoverable=False)


class SystemCrash(SimulatedFault):
    """The fault destroyed the exception/diversion path: whole-system crash.

    Models the paper's "Not recovered (segfault)" outcome where the machine
    exits with a segmentation fault instead of diverting to the booter.
    """

    kind = "crash"

    def __init__(self, message: str, component: str = "?"):
        super().__init__(message, component, recoverable=False)


class PropagatedFault(SimulatedFault):
    """A corrupted value escaped through the interface into a client.

    Models the paper's "Not recovered (propagated)" outcome.
    """

    kind = "propagated"

    def __init__(self, message: str, component: str = "?"):
        super().__init__(message, component, recoverable=False)


class InvalidDescriptor(ReproError):
    """Server-visible EINVAL: a descriptor id is unknown to the server.

    This is *not* a simulated hardware fault: it is the error return the
    server-side stub catches to drive G0 recovery of global descriptors.
    """

    def __init__(self, desc_id, component: str = "?"):
        super().__init__(f"unknown descriptor {desc_id!r} in {component}")
        self.desc_id = desc_id
        self.component = component


# ---------------------------------------------------------------------------
# Control-flow signals
# ---------------------------------------------------------------------------

class BlockThread(Exception):
    """Signal: the invoking thread must block inside the server.

    COMPOSITE invocations are synchronous (thread migration), so a blocking
    server call suspends the client thread too.  The kernel catches this
    signal, parks the thread, and later resumes the invocation when the
    server wakes it (via a wakeup interface function or a timer expiry).

    Attributes:
        component: name of the component the thread blocks in.
        token: opaque value identifying the wait reason (e.g. a lock id).
        timeout: optional virtual-time expiry (absolute cycles) after which
            the kernel wakes the thread spontaneously.
        on_wake: optional callable run (in server context) when the thread is
            woken; its return value becomes the invocation's return value.
    """

    def __init__(self, component: str, token, timeout=None, on_wake=None):
        super().__init__(f"thread blocks in {component} on {token!r}")
        self.component = component
        self.token = token
        self.timeout = timeout
        self.on_wake = on_wake
