"""System builder: assemble a full simulated COMPOSITE system.

Wires the kernel, booter, the six system services plus their protected
helpers (storage, cbuf), application client components, and — depending on
the fault-tolerance mode — the SuperGlue-generated stubs, the hand-written
C^3 stubs, or no stubs at all (the unprotected baseline).

This is the main entry point of the library::

    from repro.system import build_system
    system = build_system(ft_mode="superglue")
    system.kernel.create_thread(...)
    system.kernel.run()
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.composite.app import AppComponent
from repro.composite.booter import Booter
from repro.composite.cbuf import CbufManager
from repro.composite.kernel import Kernel
from repro.composite.services import (
    EventService,
    LockService,
    MemoryManagerService,
    RamFSService,
    SchedService,
    StorageService,
    TimerService,
)
from repro.core.compiler import CompiledInterface, SuperGlueCompiler
from repro.core.runtime.recovery import RecoveryManager
from repro.errors import ConfigurationError
from repro.idl_specs import SERVICES, load_all

#: Default application (client) components hosting workload threads.
DEFAULT_APPS = ("app0", "app1", "app2")

_compiled_cache: Optional[Dict[str, CompiledInterface]] = None


def compile_all_interfaces(force: bool = False) -> Dict[str, CompiledInterface]:
    """Compile the six service IDLs once and cache the result."""
    global _compiled_cache
    if _compiled_cache is None or force:
        compiler = SuperGlueCompiler()
        _compiled_cache = {
            name: compiler.compile_source(source, name=name)
            for name, source in load_all().items()
        }
    return _compiled_cache


@dataclass
class System:
    """A fully wired simulated system."""

    kernel: Kernel
    booter: Booter
    ft_mode: str
    apps: List[str]
    recovery_manager: Optional[RecoveryManager] = None
    compiled: Dict[str, CompiledInterface] = field(default_factory=dict)
    client_stubs: Dict[tuple, object] = field(default_factory=dict)

    def service(self, name: str):
        return self.kernel.component(name)

    def stub(self, client: str, server: str):
        return self.client_stubs.get((client, server))

    def run(self, **kwargs):
        return self.kernel.run(**kwargs)


def _make_services():
    return [
        SchedService(),
        MemoryManagerService(),
        RamFSService(),
        LockService(),
        EventService(),
        TimerService(),
    ]


def build_system(
    ft_mode: str = "superglue",
    apps=DEFAULT_APPS,
    recovery_mode: str = "ondemand",
) -> System:
    """Build a system in one of three fault-tolerance modes.

    * ``"none"`` — no stubs, no recovery: a detected service fault crashes
      the system (the unprotected COMPOSITE baseline of Fig. 7).
    * ``"c3"`` — hand-written C^3 stubs (Section II-C baseline).
    * ``"superglue"`` — SuperGlue-compiled stubs (the contribution).
    """
    if ft_mode not in ("none", "c3", "superglue"):
        raise ConfigurationError(f"unknown ft_mode {ft_mode!r}")
    kernel = Kernel(ft_mode=ft_mode)
    for app in apps:
        kernel.register_component(AppComponent(app))
    for service in _make_services():
        kernel.register_component(service)
    kernel.register_component(StorageService())
    kernel.register_component(CbufManager())
    kernel.grant_all_caps()
    booter = Booter(kernel)

    system = System(
        kernel=kernel, booter=booter, ft_mode=ft_mode, apps=list(apps)
    )

    if ft_mode == "none":
        return system

    manager = RecoveryManager(kernel, mode=recovery_mode)
    system.recovery_manager = manager

    if ft_mode == "superglue":
        compiled = compile_all_interfaces()
        system.compiled = compiled
        for name in SERVICES:
            interface = compiled[name]
            manager.register_interface(interface.ir)
            server_stub = interface.make_server_stub(kernel.component(name))
            kernel.register_server_stub(name, server_stub)
            for app in apps:
                stub = interface.make_client_stub(app)
                kernel.register_stub(app, name, stub)
                system.client_stubs[(app, name)] = stub
    else:  # c3
        from repro.c3 import make_c3_stubs

        irs, client_factory, server_factory = make_c3_stubs()
        for name in SERVICES:
            manager.register_interface(irs[name])
            server_stub = server_factory(name, kernel.component(name), irs[name])
            if server_stub is not None:
                kernel.register_server_stub(name, server_stub)
            for app in apps:
                stub = client_factory(name, app, irs[name])
                kernel.register_stub(app, name, stub)
                system.client_stubs[(app, name)] = stub
    return system
