"""System builder: assemble a full simulated COMPOSITE system.

Wires the kernel, booter, the six system services plus their protected
helpers (storage, cbuf), application client components, and — depending on
the fault-tolerance mode — the SuperGlue-generated stubs, the hand-written
C^3 stubs, or no stubs at all (the unprotected baseline).

This is the main entry point of the library::

    from repro.system import build_system
    system = build_system(ft_mode="superglue")
    system.kernel.create_thread(...)
    system.kernel.run()
"""

from __future__ import annotations

import os
import zlib
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.composite.app import AppComponent
from repro.composite.booter import Booter
from repro.composite.cbuf import CbufManager
from repro.composite.kernel import Kernel
from repro.composite.services import (
    EventService,
    LockService,
    MemoryManagerService,
    RamFSService,
    SchedService,
    StorageService,
    TimerService,
)
from repro.core.compiler import CompiledInterface, SuperGlueCompiler
from repro.core.runtime.recovery import RecoveryManager
from repro.errors import ConfigurationError, ReproError
from repro.idl_specs import SERVICES, load_all

#: Default application (client) components hosting workload threads.
DEFAULT_APPS = ("app0", "app1", "app2")

_compiled_cache: Optional[Dict[str, CompiledInterface]] = None


def compile_all_interfaces(force: bool = False) -> Dict[str, CompiledInterface]:
    """Compile the six service IDLs once and cache the result."""
    global _compiled_cache
    if _compiled_cache is None or force:
        compiler = SuperGlueCompiler()
        _compiled_cache = {
            name: compiler.compile_source(source, name=name)
            for name, source in load_all().items()
        }
    return _compiled_cache


@dataclass
class System:
    """A fully wired simulated system."""

    kernel: Kernel
    booter: Booter
    ft_mode: str
    apps: List[str]
    recovery_manager: Optional[RecoveryManager] = None
    compiled: Dict[str, CompiledInterface] = field(default_factory=dict)
    client_stubs: Dict[tuple, object] = field(default_factory=dict)

    def service(self, name: str):
        return self.kernel.component(name)

    def stub(self, client: str, server: str):
        return self.client_stubs.get((client, server))

    def run(self, **kwargs):
        return self.kernel.run(**kwargs)


def _make_services():
    return [
        SchedService(),
        MemoryManagerService(),
        RamFSService(),
        LockService(),
        EventService(),
        TimerService(),
    ]


def build_system(
    ft_mode: str = "superglue",
    apps=DEFAULT_APPS,
    recovery_mode: str = "ondemand",
) -> System:
    """Build a system in one of three fault-tolerance modes.

    * ``"none"`` — no stubs, no recovery: a detected service fault crashes
      the system (the unprotected COMPOSITE baseline of Fig. 7).
    * ``"c3"`` — hand-written C^3 stubs (Section II-C baseline).
    * ``"superglue"`` — SuperGlue-compiled stubs (the contribution).
    """
    if ft_mode not in ("none", "c3", "superglue"):
        raise ConfigurationError(f"unknown ft_mode {ft_mode!r}")
    kernel = Kernel(ft_mode=ft_mode)
    for app in apps:
        kernel.register_component(AppComponent(app))
    for service in _make_services():
        kernel.register_component(service)
    kernel.register_component(StorageService())
    kernel.register_component(CbufManager())
    kernel.grant_all_caps()
    booter = Booter(kernel)

    system = System(
        kernel=kernel, booter=booter, ft_mode=ft_mode, apps=list(apps)
    )

    if ft_mode == "none":
        return system

    manager = RecoveryManager(kernel, mode=recovery_mode)
    system.recovery_manager = manager

    if ft_mode == "superglue":
        compiled = compile_all_interfaces()
        system.compiled = compiled
        for name in SERVICES:
            interface = compiled[name]
            manager.register_interface(interface.ir)
            server_stub = interface.make_server_stub(kernel.component(name))
            kernel.register_server_stub(name, server_stub)
            for app in apps:
                stub = interface.make_client_stub(app)
                kernel.register_stub(app, name, stub)
                system.client_stubs[(app, name)] = stub
    else:  # c3
        from repro.c3 import make_c3_stubs

        irs, client_factory, server_factory = make_c3_stubs()
        for name in SERVICES:
            manager.register_interface(irs[name])
            server_stub = server_factory(name, kernel.component(name), irs[name])
            if server_stub is not None:
                kernel.register_server_stub(name, server_stub)
            for app in apps:
                stub = client_factory(name, app, irs[name])
                kernel.register_stub(app, name, stub)
                system.client_stubs[(app, name)] = stub
    return system


# ---------------------------------------------------------------------------
# System pooling: boot once, dirty-restore per run
# ---------------------------------------------------------------------------

def pooling_enabled() -> bool:
    """Is system pooling on?  ``REPRO_SYSTEM_POOL=0`` disables it."""
    return os.environ.get("REPRO_SYSTEM_POOL", "1") != "0"


#: Attributes excluded from structural fingerprints.  Back-references
#: (kernel, component, booter, ...) would recurse; images are
#: fingerprinted separately via their CRC; the trace caches
#: (``_trace_cache``, ``_track_traces``) and compiled interface IRs are
#: deliberately *kept warm* across pooled runs — their keys capture every
#: trace-determining input, so reuse changes wall-clock only.
_FINGERPRINT_SKIP = frozenset(
    {
        "kernel",
        "image",
        "component",
        "booter",
        "recovery_manager",
        "recorder",
        "swifi",
        "clock",
        "run_queue",
        "interfaces",
        "ir",
        "_exports",
        "_trace_cache",
        "_track_traces",
        # Perf bookkeeping, not run-visible state: the pooled-restore
        # skip flag and the stub-method lookup memo.
        "_ran",
        "_stub_methods",
    }
)

_FINGERPRINT_MAX_DEPTH = 8


def _flatten(obj, path: str, out: Dict[str, object], depth: int = 0) -> None:
    """Flatten ``obj`` into ``out`` as deterministic path -> value pairs."""
    if depth > _FINGERPRINT_MAX_DEPTH:
        out[path] = f"<depth:{type(obj).__name__}>"
        return
    if obj is None or isinstance(obj, (bool, int, float, str)):
        out[path] = obj
    elif isinstance(obj, (bytes, bytearray)):
        out[path] = f"bytes:{len(obj)}:{zlib.crc32(bytes(obj)):08x}"
    elif callable(obj):
        out[path] = f"<fn:{getattr(obj, '__qualname__', repr(obj))}>"
    elif isinstance(obj, dict):
        out[f"{path}#len"] = len(obj)
        for key in sorted(obj, key=repr):
            _flatten(obj[key], f"{path}[{key!r}]", out, depth + 1)
    elif isinstance(obj, (list, tuple, deque)):
        out[f"{path}#len"] = len(obj)
        for index, item in enumerate(obj):
            _flatten(item, f"{path}[{index}]", out, depth + 1)
    elif isinstance(obj, (set, frozenset)):
        _flatten(sorted(obj, key=repr), path, out, depth)
    else:
        attrs: Dict[str, object] = {}
        for slot in getattr(type(obj), "__slots__", ()):
            if hasattr(obj, slot):
                attrs[slot] = getattr(obj, slot)
        attrs.update(getattr(obj, "__dict__", {}))
        if not attrs:
            out[path] = f"<{type(obj).__name__}>"
            return
        out[f"{path}#type"] = type(obj).__name__
        for name in sorted(attrs):
            if name in _FINGERPRINT_SKIP or name.startswith("_sealed"):
                continue
            _flatten(attrs[name], f"{path}.{name}", out, depth + 1)


def system_fingerprint(system: System) -> Dict[str, object]:
    """A structural fingerprint of everything a run can mutate.

    Used by the pool's debug mode to prove a restored system is
    indistinguishable from a fresh build: two systems with equal
    fingerprints have identical images (CRC + allocator position),
    kernel counters, component state, stub tracking tables, and
    recovery/booter logs.
    """
    out: Dict[str, object] = {}
    kernel = system.kernel
    out["ft_mode"] = kernel.ft_mode
    out["clock.now"] = kernel.clock.now
    out["next_tid"] = kernel._next_tid
    out["crashed"] = repr(kernel.crashed)
    out["threads#len"] = len(kernel.threads)
    out["components"] = ",".join(kernel.components)
    _flatten(dict(kernel.stats), "kernel.stats", out)
    for name, component in kernel.components.items():
        image = component.image
        out[f"{name}.image.crc32"] = zlib.crc32(image.words.tobytes())
        out[f"{name}.image.alloc_ptr"] = image._alloc_ptr
        out[f"{name}.image.taint"] = image.taint_count
        _flatten(component, name, out)
    for (client, server), stub in sorted(kernel.all_client_stubs().items()):
        _flatten(stub, f"stub[{client}->{server}]", out)
    for server, stub in sorted(kernel.all_server_stubs().items()):
        _flatten(stub, f"server_stub[{server}]", out)
    _flatten(system.booter.reboot_log, "booter.reboot_log", out)
    if system.recovery_manager is not None:
        _flatten(
            system.recovery_manager.recovery_samples,
            "recovery.samples", out,
        )
        _flatten(
            system.recovery_manager.reboot_events, "recovery.reboots", out
        )
    return out


class SystemSnapshot:
    """Seal a freshly built system; restore it to post-boot state cheaply.

    Sealing copies aside the state that ``reinit`` deliberately preserves
    (storage contents, cbufs, app handlers, fault observers); restoring
    resets every per-run structure — kernel clock/queues/threads/stats,
    component images (dirty pages only) and records, stub tracking
    tables, recovery samples, the booter log — leaving the restored
    system structurally identical to a fresh :func:`build_system`.

    ``prepare`` is an optional post-build hook (e.g. registering the web
    server's application components) applied before sealing; the debug
    diff applies the same hook to its fresh reference build so prepared
    systems stay verifiable.  It must be deterministic and idempotent
    per fresh system.
    """

    def __init__(
        self,
        system: System,
        prepare: Optional[Callable[[System], None]] = None,
    ):
        self.system = system
        self.prepare = prepare
        self.params: Tuple[str, tuple, str] = (
            system.ft_mode,
            tuple(system.apps),
            system.recovery_manager.mode
            if system.recovery_manager is not None
            else "ondemand",
        )
        self.restores = 0
        kernel = system.kernel
        kernel.pool_seal()
        for component in kernel.components.values():
            component.pool_seal()
        # Restore is the pooled campaign's per-run hot path: bind the
        # restorable set once at seal time instead of re-enumerating
        # (and hasattr-probing) components and stubs on every run.
        restorables = list(kernel.components.values())
        restorables += [
            stub
            for stub in kernel.all_client_stubs().values()
            if hasattr(stub, "pool_restore")
        ]
        restorables += [
            stub
            for stub in kernel.all_server_stubs().values()
            if hasattr(stub, "pool_restore")
        ]
        restorables.append(system.booter)
        if system.recovery_manager is not None:
            restorables.append(system.recovery_manager)
        # Components (and stubs) skip their restore when the previous run
        # never touched them.  Debug mode wants the opposite: exercise
        # the full restore path every run so the fingerprint diff checks
        # the durable sealed copies too, not just the touched subset.
        if os.environ.get("REPRO_POOL_DEBUG") == "1":
            self._pool_restores = tuple(
                getattr(r, "_pool_restore_impl", r.pool_restore)
                for r in restorables
            )
        else:
            self._pool_restores = tuple(r.pool_restore for r in restorables)

    def restore(self) -> System:
        system = self.system
        system.kernel.pool_restore()
        for pool_restore in self._pool_restores:
            pool_restore()
        self.restores += 1
        return system

    def diff_against_fresh(self) -> List[str]:
        """Structural differences between this system and a fresh build."""
        ft_mode, apps, recovery_mode = self.params
        fresh = build_system(ft_mode, apps=apps, recovery_mode=recovery_mode)
        if self.prepare is not None:
            self.prepare(fresh)
        pooled = system_fingerprint(self.system)
        reference = system_fingerprint(fresh)
        diffs = []
        for key in sorted(set(pooled) | set(reference)):
            mine = pooled.get(key, "<absent>")
            theirs = reference.get(key, "<absent>")
            if mine != theirs:
                diffs.append(f"{key}: pooled={mine!r} fresh={theirs!r}")
        return diffs


def system_snapshot(system: System, prepare=None) -> SystemSnapshot:
    """Seal ``system``'s current (post-boot) state for later restores."""
    return SystemSnapshot(system, prepare=prepare)


class SystemPool:
    """Per-process pool of sealed systems, keyed by build parameters.

    ``acquire`` builds (and seals) on first use, then dirty-restores on
    every subsequent call.  With ``REPRO_POOL_DEBUG=1`` each restore is
    verified against a fresh build via :func:`system_fingerprint` — any
    structural divergence raises.
    """

    def __init__(self):
        self._snapshots: Dict[tuple, SystemSnapshot] = {}
        self.stats = {"builds": 0, "restores": 0}

    def acquire(
        self,
        ft_mode: str = "superglue",
        apps=DEFAULT_APPS,
        recovery_mode: str = "ondemand",
        prepare: Optional[Callable[[System], None]] = None,
        instance: Optional[object] = None,
    ) -> System:
        """Acquire a sealed system, building on first use.

        ``instance`` distinguishes otherwise-identical systems that must
        coexist live in one process — e.g. the simulated nodes of a
        cluster cell each pass their node id, so each node owns a
        private snapshot instead of all nodes sharing (and clobbering)
        one pooled image.
        """
        key = (
            ft_mode,
            tuple(apps),
            recovery_mode,
            None
            if prepare is None
            else f"{prepare.__module__}.{prepare.__qualname__}",
            instance,
        )
        snapshot = self._snapshots.get(key)
        if snapshot is None:
            system = build_system(
                ft_mode, apps=apps, recovery_mode=recovery_mode
            )
            if prepare is not None:
                prepare(system)
            self._snapshots[key] = SystemSnapshot(system, prepare=prepare)
            self.stats["builds"] += 1
            return system
        system = snapshot.restore()
        self.stats["restores"] += 1
        if os.environ.get("REPRO_POOL_DEBUG") == "1":
            diffs = snapshot.diff_against_fresh()
            if diffs:
                detail = "; ".join(diffs[:10])
                raise ReproError(
                    f"pooled system diverged from fresh build "
                    f"({len(diffs)} differences): {detail}"
                )
        return system

    def peek(
        self,
        ft_mode: str = "superglue",
        apps=DEFAULT_APPS,
        recovery_mode: str = "ondemand",
        prepare: Optional[Callable[[System], None]] = None,
        instance: Optional[object] = None,
    ) -> Optional[System]:
        """The pooled system for these parameters, *without* restoring.

        Identity-only lookup for caches that key state to a specific
        pooled system object (e.g. the super-trace registry): a restore
        here would double the per-run restore cost for nothing.
        """
        key = (
            ft_mode,
            tuple(apps),
            recovery_mode,
            None
            if prepare is None
            else f"{prepare.__module__}.{prepare.__qualname__}",
            instance,
        )
        snapshot = self._snapshots.get(key)
        return None if snapshot is None else snapshot.system

    def snapshot_for(
        self,
        ft_mode: str = "superglue",
        apps=DEFAULT_APPS,
        recovery_mode: str = "ondemand",
        prepare: Optional[Callable[[System], None]] = None,
        instance: Optional[object] = None,
    ) -> Optional[SystemSnapshot]:
        """The sealed snapshot for these parameters, if one exists.

        The cluster supervisor uses this to whole-node reboot: restoring
        a node's snapshot *is* the node reboot (dirty-page restore of
        every component image plus per-run structure resets).
        """
        key = (
            ft_mode,
            tuple(apps),
            recovery_mode,
            None
            if prepare is None
            else f"{prepare.__module__}.{prepare.__qualname__}",
            instance,
        )
        return self._snapshots.get(key)

    def clear(self) -> None:
        self._snapshots.clear()


#: Process-wide pool used by the SWIFI campaign driver and workers.
GLOBAL_POOL = SystemPool()
