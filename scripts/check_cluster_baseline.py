#!/usr/bin/env python3
"""Check a cluster campaign JSON artifact against committed bounds.

Usage:  python scripts/check_cluster_baseline.py ARTIFACT BASELINE

ARTIFACT is the output of ``python -m repro cluster --json PATH``;
BASELINE is ``benchmarks/baselines/cluster_smoke.json``.  Exits
non-zero if the artifact's fingerprint or scenario count does not match
the baseline, if the aggregate availability or recovery ratio drifts
outside its recorded band, or if any scenario violates the structural
failover invariant (every kill round must produce at least one failover
and one whole-node reboot, and availability must account for every
failed-over unit).
"""

import json
import sys


def check(artifact_path: str, baseline_path: str) -> int:
    with open(artifact_path, "r", encoding="utf-8") as handle:
        artifact = json.load(handle)
    with open(baseline_path, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)

    failures = []
    if artifact["fingerprint"] != baseline["fingerprint"]:
        failures.append(
            f"fingerprint {artifact['fingerprint']!r} != "
            f"{baseline['fingerprint']!r}"
        )
    aggregate = artifact["aggregate"]
    if aggregate["scenarios"] != baseline["scenarios"]:
        failures.append(
            f"scenarios {aggregate['scenarios']} != {baseline['scenarios']}"
        )
    bounds = baseline["bounds"]
    for metric in ("availability", "recovery_ratio"):
        lo, hi = bounds[metric]
        value = aggregate[metric]
        if not lo <= value <= hi:
            failures.append(f"{metric} {value:.4f} outside [{lo}, {hi}]")
    if aggregate["failovers"] < bounds["min_failovers"]:
        failures.append(
            f"failovers {aggregate['failovers']} < {bounds['min_failovers']}"
        )
    if aggregate["node_reboots"] < bounds["min_node_reboots"]:
        failures.append(
            f"node_reboots {aggregate['node_reboots']} < "
            f"{bounds['min_node_reboots']}"
        )
    if aggregate["evictions"] > bounds["max_evictions"]:
        failures.append(
            f"evictions {aggregate['evictions']} > {bounds['max_evictions']}"
        )

    # Structural invariants, per scenario: a kill round always fails the
    # interrupted unit over (or emergency-reboots in place) and always
    # whole-node-reboots the victims; availability is defined as the
    # fraction of unit slots served by their original placement.
    n_kill = artifact["spec"]["n_kill"]
    for row in artifact["rows"]:
        seed = row["scenario_seed"]
        if n_kill >= 1:
            if row["node_reboots"] < 1:
                failures.append(f"scenario {seed}: no whole-node reboot")
            if row["failovers"] < 1 and row["outcome"] != "ok":
                failures.append(f"scenario {seed}: no failover recorded")
            if len(row["victims"]) != n_kill:
                failures.append(
                    f"scenario {seed}: {len(row['victims'])} victims "
                    f"!= n_kill {n_kill}"
                )
        expected = (row["units"] - row["failovers"]) / row["units"]
        if abs(row["availability"] - expected) > 1e-12:
            failures.append(
                f"scenario {seed}: availability {row['availability']} "
                f"inconsistent with failovers"
            )

    print(
        f"scenarios={aggregate['scenarios']} units={aggregate['units']} "
        f"failovers={aggregate['failovers']} "
        f"node_reboots={aggregate['node_reboots']} "
        f"availability={aggregate['availability']:.2%} "
        f"recovery={aggregate['recovery_ratio']:.2%}"
    )
    if failures:
        print("\nBASELINE CHECK FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nbaseline check passed")
    return 0


if __name__ == "__main__":
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        raise SystemExit(2)
    raise SystemExit(check(sys.argv[1], sys.argv[2]))
