#!/usr/bin/env python3
"""Check a campaign-throughput artifact against the committed baseline.

Usage:  python scripts/check_campaign_baseline.py ARTIFACT [BASELINE]
                [--tolerance FRACTION]

ARTIFACT is the output of ``python benchmarks/bench_campaign_throughput.py
--json PATH``; BASELINE defaults to
``benchmarks/baselines/campaign_throughput.json``.

Two kinds of gate:

* **absolute rates** (fresh/pooled campaign runs/sec) must stay within
  ``tolerance`` below the recorded values.  The tolerance is wide
  (default from the baseline file) because absolute throughput varies
  across machines and CI runners; the gate catches order-of-magnitude
  regressions, not noise.
* **ratio floors** (``min_pooled_over_fresh``,
  ``min_super_trace_over_two_tier``, ``min_replayed_unit_coverage``)
  are machine-independent: the sweeps execute the same runs on the
  same host, so a collapsing pooled/fresh ratio always means system
  pooling broke or stopped being used, a collapsing super-trace/
  two-tier ratio means the tier-3 replay engine stopped engaging, and
  a collapsing replayed-unit coverage means the divergence-tail cache
  stopped recording or sharing tails.

Exits non-zero on any violation.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_BASELINE = (
    Path(__file__).resolve().parents[1]
    / "benchmarks" / "baselines" / "campaign_throughput.json"
)


def check(artifact_path: str, baseline_path: str,
          tolerance: float | None) -> int:
    with open(artifact_path, "r", encoding="utf-8") as handle:
        results = json.load(handle)
    with open(baseline_path, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    if tolerance is None:
        tolerance = baseline.get("default_tolerance", 0.40)

    failures = []
    for metric, recorded in baseline["recorded"].items():
        value = results.get(metric)
        if value is None:
            failures.append(f"{metric}: missing from artifact")
            continue
        floor = recorded * (1.0 - tolerance)
        status = "ok" if value >= floor else "FAIL"
        print(
            f"{metric:22s} {value:14,.0f}  "
            f"(recorded {recorded:14,.0f}, floor {floor:14,.0f})  {status}"
        )
        if value < floor:
            failures.append(
                f"{metric}: {value:,.0f} below floor {floor:,.0f} "
                f"(recorded {recorded:,.0f}, tolerance {tolerance:.0%})"
            )

    for baseline_key, metric in (
        ("min_pooled_over_fresh", "pooled_over_fresh"),
        ("min_super_trace_over_two_tier", "super_trace_over_two_tier"),
        ("min_replayed_unit_coverage", "replayed_unit_coverage"),
    ):
        ratio_floor = baseline.get(baseline_key)
        if ratio_floor is None:
            continue
        ratio = results.get(metric, 0.0)
        status = "ok" if ratio >= ratio_floor else "FAIL"
        print(f"{metric:22s} {ratio:14.2f}  "
              f"(floor {ratio_floor:14.2f})  {status}")
        if ratio < ratio_floor:
            failures.append(
                f"{metric}: {ratio:.2f} below floor {ratio_floor:.2f}"
            )

    if failures:
        print("\nCAMPAIGN BASELINE CHECK FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\ncampaign baseline check passed")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("artifact",
                        help="bench_campaign_throughput.py --json output")
    parser.add_argument("baseline", nargs="?", default=str(DEFAULT_BASELINE))
    parser.add_argument("--tolerance", type=float, default=None,
                        help="allowed fractional drop below recorded rates "
                             "(default: baseline file's default_tolerance)")
    args = parser.parse_args(argv)
    return check(args.artifact, args.baseline, args.tolerance)


if __name__ == "__main__":
    raise SystemExit(main())
