#!/usr/bin/env python3
"""Check an open-loop Fig. 7 sweep against its committed baseline.

Usage:  python scripts/check_fig7_openloop.py ARTIFACT [BASELINE]

ARTIFACT is the output of ``python benchmarks/bench_fig7_webserver.py
--openloop --json PATH``; BASELINE defaults to
``benchmarks/baselines/fig7_openloop.json``.

This gate is unlike the wall-clock ones (``check_fig7_baseline.py`` and
friends): the open-loop sweep has no timing in it.  Every recorded value
is a virtual-time outcome — served counts, SLO hits, queue peaks,
histogram quantiles — and therefore a pure function of the spec and the
seed schedule.  Integers must match *exactly*; floats are allowed a
last-ulp relative epsilon because ``math.log``/``math.pow`` results can
differ across libm implementations in the final bit.  Any larger drift
means behaviour changed: the open-loop request path, the SWIFI
schedule, or the histogram math.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path

DEFAULT_BASELINE = (
    Path(__file__).resolve().parents[1]
    / "benchmarks" / "baselines" / "fig7_openloop.json"
)

#: Generous against last-ulp libm drift, tiny against real change: the
#: smallest behavioural difference (one request crossing the SLO) moves
#: goodput by ~0.2%.
REL_EPS = 1e-9


def _compare(path: str, got, want, failures: list) -> None:
    if isinstance(want, dict):
        if not isinstance(got, dict):
            failures.append(f"{path}: expected object, got {type(got).__name__}")
            return
        for key, sub in want.items():
            if key not in got:
                failures.append(f"{path}.{key}: missing from artifact")
            else:
                _compare(f"{path}.{key}", got[key], sub, failures)
        for key in got:
            if key not in want:
                failures.append(f"{path}.{key}: not in baseline")
    elif isinstance(want, list):
        if not isinstance(got, list) or len(got) != len(want):
            failures.append(f"{path}: length/shape mismatch")
            return
        for i, (g, w) in enumerate(zip(got, want)):
            _compare(f"{path}[{i}]", g, w, failures)
    elif isinstance(want, bool) or want is None or isinstance(want, str):
        if got != want:
            failures.append(f"{path}: {got!r} != {want!r}")
    elif isinstance(want, int):
        # Virtual-time integers admit no tolerance at all.
        if not isinstance(got, int) or got != want:
            failures.append(f"{path}: {got!r} != {want!r} (exact int)")
    elif isinstance(want, float):
        if not isinstance(got, (int, float)) or not math.isclose(
            got, want, rel_tol=REL_EPS, abs_tol=REL_EPS
        ):
            failures.append(f"{path}: {got!r} != {want!r} (float epsilon)")
    else:
        failures.append(f"{path}: unhandled baseline type {type(want).__name__}")


def check(artifact_path: str, baseline_path: str) -> int:
    with open(artifact_path, "r", encoding="utf-8") as handle:
        results = json.load(handle)
    with open(baseline_path, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)

    failures: list = []
    _compare("params", results.get("params"), baseline["params"], failures)
    _compare("points", results.get("points"), baseline["points"], failures)

    for point in baseline["points"]:
        print(
            f"load {point['load']:>4g}  goodput {point['goodput_rps']:>12,.0f}"
            f"  slo {point['slo_ok']}/{point['requests']}"
            f"  p999 {point['latency_p999_cycles']:>10,}"
        )

    if failures:
        print("\nFIG7 OPEN-LOOP CHECK FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nfig7 open-loop check passed (exact)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("artifact",
                        help="bench_fig7_webserver.py --openloop --json output")
    parser.add_argument("baseline", nargs="?", default=str(DEFAULT_BASELINE))
    args = parser.parse_args(argv)
    return check(args.artifact, args.baseline)


if __name__ == "__main__":
    raise SystemExit(main())
