#!/usr/bin/env python3
"""Check a Table II JSON artifact against committed regression bounds.

Usage:  python scripts/check_table2_baseline.py ARTIFACT BASELINE

ARTIFACT is the output of ``python -m repro table2 --json PATH`` (one
dict per table row); BASELINE is one of
``benchmarks/baselines/table2_<class>_smoke.json`` (the plain
``table2_smoke.json`` covers the default register class).  Exits
non-zero if any service's activation ratio or recovery success rate
drifts outside its recorded band, if propagation exceeds its cap, if a
service is missing from the artifact, or if the artifact's fault class
does not match the baseline's.
"""

import json
import sys


def check(artifact_path: str, baseline_path: str) -> int:
    with open(artifact_path, "r", encoding="utf-8") as handle:
        rows = {row["component"]: row for row in json.load(handle)}
    with open(baseline_path, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)

    failures = []
    fault_class = baseline.get("fault_class", "reg")
    for service, bounds in baseline["bounds"].items():
        row = rows.get(service)
        if row is None:
            failures.append(f"{service}: missing from artifact")
            continue
        row_class = row.get("fault_class", "reg")
        if row_class != fault_class:
            failures.append(
                f"{service}: fault_class {row_class!r} != {fault_class!r}"
            )
        expected = baseline["faults_per_service"]
        if row["injected"] != expected:
            failures.append(
                f"{service}: injected {row['injected']} != {expected}"
            )
        for metric in ("activation_ratio", "recovery_success_rate"):
            lo, hi = bounds[metric]
            value = row[metric]
            if not lo <= value <= hi:
                failures.append(
                    f"{service}: {metric} {value:.4f} outside [{lo}, {hi}]"
                )
        cap = bounds["max_not_recovered_propagated"]
        if row["not_recovered_propagated"] > cap:
            failures.append(
                f"{service}: not_recovered_propagated "
                f"{row['not_recovered_propagated']} > {cap}"
            )

    for service, row in rows.items():
        print(
            f"{service:6s} activation={row['activation_ratio']:.2%} "
            f"success={row['recovery_success_rate']:.2%} "
            f"propagated={row['not_recovered_propagated']}"
        )
    if failures:
        print("\nBASELINE CHECK FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nbaseline check passed")
    return 0


if __name__ == "__main__":
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        raise SystemExit(2)
    raise SystemExit(check(sys.argv[1], sys.argv[2]))
