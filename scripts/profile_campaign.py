#!/usr/bin/env python3
"""Profile a SWIFI campaign: per-phase wall breakdown + hot call sites.

Usage:  python scripts/profile_campaign.py [--service lock] [--faults 50]
                [--seed 0] [--sort cumulative] [--top 25] [--no-phases]

Two views of the same campaign, both single-process (workers=1, so the
numbers cover the actual work instead of pool plumbing):

* a **per-phase wall breakdown** — one-time setup costs (IDL compile,
  pooled boot + seal, super-trace recording) and the per-run split
  across pool restore, SWIFI setup, workload install, arming, and the
  run itself — the view that sized the system pool and the tier-3
  super-trace engine;
* the classic **cProfile table** of hot call sites — the tool that
  motivated the two-tier execution engine: before it, ``execute_trace``
  dominated every profile; after, the interpreter drops below the
  stub/kernel bookkeeping.

Also available as ``make profile`` (SERVICE/FAULTS overridable).
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.swifi.campaign import CampaignRunner  # noqa: E402


def phase_breakdown(service: str, n_faults: int, seed: int) -> None:
    """Print setup and per-run phase wall times for one smoke campaign.

    Mirrors ``_drive_run`` step by step with a timer around each phase —
    duplicated here (not instrumented in the hot path) so the campaign
    itself pays zero overhead for the existence of this tool.
    """
    from repro.composite.supertrace import ReplaySession, tail_replay_enabled
    from repro.errors import (
        BlockThread, ReproError, SimulatedFault, SystemHang,
    )
    from repro.swifi.campaign import (
        MAX_STEPS,
        _arm_for_class,
        _campaign_recording,
        _campaign_system,
        classify_run,
        collect_coverage,
        coverage_ratio,
        injection_point,
    )
    from repro.swifi.injector import SwifiController
    from repro.system import (
        GLOBAL_POOL, compile_all_interfaces, pooling_enabled,
    )
    from repro.workloads import workload_for

    runner = CampaignRunner(service, n_faults=n_faults, seed=seed)
    spec = runner.spec()
    seeds = runner.run_seeds()

    setup = {}
    start = time.perf_counter()
    if spec.ft_mode == "superglue":
        compile_all_interfaces()
    setup["idl compile"] = time.perf_counter() - start
    start = time.perf_counter()
    if pooling_enabled():
        GLOBAL_POOL.acquire(
            ft_mode=spec.ft_mode, recovery_mode=spec.recovery_mode
        )
    setup["pool boot + seal"] = time.perf_counter() - start
    start = time.perf_counter()
    _campaign_recording(spec)
    setup["super-trace record"] = time.perf_counter() - start

    order = (
        "pool restore", "swifi setup", "workload install", "arm",
        "recording attach", "run", "classify",
    )
    phases = dict.fromkeys(order, 0.0)

    def tick(phase: str, since: float) -> float:
        now = time.perf_counter()
        phases[phase] += now - since
        return now

    coverage = None
    for run_seed in seeds:
        t = time.perf_counter()
        recording = _campaign_recording(spec)
        t = tick("recording attach", t)
        system = _campaign_system(spec.ft_mode, spec.recovery_mode)
        t = tick("pool restore", t)
        kernel = system.kernel
        swifi = SwifiController(kernel, seed=run_seed)
        t = tick("swifi setup", t)
        workload = workload_for(spec.service)
        handle = workload.install(system, iterations=spec.iterations)
        t = tick("workload install", t)
        _arm_for_class(swifi, spec, injection_point(run_seed, spec.horizon))
        t = tick("arm", t)
        session = None
        if recording is not None and recording.kernel is kernel:
            session = ReplaySession(recording, tails=tail_replay_enabled())
            kernel._supertrace = session
        t = tick("recording attach", t)
        crash, steps = None, 0
        try:
            steps = system.run(max_steps=MAX_STEPS)
        except (SystemHang, SimulatedFault, ReproError, BlockThread) as exc:
            crash = exc
        finally:
            kernel._supertrace = None
            if session is not None:
                session.finalize(kernel)
        t = tick("run", t)
        coverage = collect_coverage(kernel, coverage)
        if kernel.crashed is not None and crash is None:
            crash = kernel.crashed
        classify_run(spec.ft_mode, system, swifi, handle, crash, steps)
        tick("classify", t)

    total = sum(phases.values())
    print(f"per-phase wall breakdown ({len(seeds)} runs):")
    print("  one-time setup:")
    for name, elapsed in setup.items():
        print(f"    {name:22s} {elapsed * 1e3:10.1f} ms")
    print("  per run:")
    for name in order:
        mean_us = phases[name] / len(seeds) * 1e6
        share = phases[name] / total * 100 if total else 0.0
        print(f"    {name:22s} {mean_us:10.1f} us  {share:5.1f}%")
    rate = len(seeds) / total if total else 0.0
    print(f"    {'total':22s} {total / len(seeds) * 1e6:10.1f} us  "
          f"({rate:,.0f} runs/s)")
    if coverage is not None:
        print("  supertrace coverage:")
        for key, value in coverage.items():
            print(f"    {key:28s} {value:10d}")
        print(f"    {'replayed_unit_coverage':28s} "
              f"{coverage_ratio(coverage):10.1%}")
    print()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--service", default="lock",
                        help="target service (default: lock)")
    parser.add_argument("--faults", type=int, default=50,
                        help="number of injected faults (default: 50)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--sort", default="cumulative",
                        choices=["cumulative", "tottime", "ncalls"])
    parser.add_argument("--top", type=int, default=25,
                        help="rows of profile output (default: 25)")
    parser.add_argument("--no-phases", action="store_true",
                        help="skip the per-phase wall breakdown")
    args = parser.parse_args(argv)

    if not args.no_phases:
        phase_breakdown(args.service, args.faults, args.seed)

    runner = CampaignRunner(
        args.service, n_faults=args.faults, seed=args.seed
    )
    profiler = cProfile.Profile()
    profiler.enable()
    result = runner.run(workers=1)
    profiler.disable()

    counts = {o.value: c for o, c in result.counter.counts.items()}
    print(f"campaign: service={args.service} faults={args.faults} "
          f"seed={args.seed} outcomes={counts}\n")
    stats = pstats.Stats(profiler)
    stats.sort_stats(args.sort).print_stats(args.top)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
