#!/usr/bin/env python3
"""Profile a SWIFI campaign under cProfile; print the hot call sites.

Usage:  python scripts/profile_campaign.py [--service lock] [--faults 50]
                [--seed 0] [--sort cumulative] [--top 25]

Runs a single-process campaign (workers=1, so the profile covers the
actual work instead of pool plumbing) and prints the top call sites by
cumulative time.  This is the tool that motivated the two-tier execution
engine: before it, ``execute_trace`` dominated every profile; after,
the interpreter drops below the stub/kernel bookkeeping.

Also available as ``make profile`` (SERVICE/FAULTS overridable).
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.swifi.campaign import CampaignRunner  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--service", default="lock",
                        help="target service (default: lock)")
    parser.add_argument("--faults", type=int, default=50,
                        help="number of injected faults (default: 50)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--sort", default="cumulative",
                        choices=["cumulative", "tottime", "ncalls"])
    parser.add_argument("--top", type=int, default=25,
                        help="rows of profile output (default: 25)")
    args = parser.parse_args(argv)

    runner = CampaignRunner(
        args.service, n_faults=args.faults, seed=args.seed
    )
    profiler = cProfile.Profile()
    profiler.enable()
    result = runner.run(workers=1)
    profiler.disable()

    counts = {o.value: c for o, c in result.counter.counts.items()}
    print(f"campaign: service={args.service} faults={args.faults} "
          f"seed={args.seed} outcomes={counts}\n")
    stats = pstats.Stats(profiler)
    stats.sort_stats(args.sort).print_stats(args.top)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
