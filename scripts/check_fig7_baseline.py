#!/usr/bin/env python3
"""Check a Fig. 7 web-campaign artifact against the committed baseline.

Usage:  python scripts/check_fig7_baseline.py ARTIFACT [BASELINE]
                [--tolerance FRACTION]

ARTIFACT is the output of ``python benchmarks/bench_fig7_webserver.py
--json PATH``; BASELINE defaults to
``benchmarks/baselines/fig7_webserver.json``.

Two kinds of gate, mirroring ``check_campaign_baseline.py``:

* **absolute rates** (fresh/pooled web-campaign runs/sec) must stay
  within ``tolerance`` below the recorded values — a wide net for
  order-of-magnitude regressions, since absolute throughput varies
  across machines and CI runners.
* **pooled/fresh ratio** must stay above ``min_pooled_over_fresh``.
  Both sweeps execute the same seeds on the same host, so the ratio is
  machine-independent; a collapse means web-server pooling broke or
  stopped being used.

Exits non-zero on any violation.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_BASELINE = (
    Path(__file__).resolve().parents[1]
    / "benchmarks" / "baselines" / "fig7_webserver.json"
)


def check(artifact_path: str, baseline_path: str,
          tolerance: float | None) -> int:
    with open(artifact_path, "r", encoding="utf-8") as handle:
        results = json.load(handle)
    with open(baseline_path, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    if tolerance is None:
        tolerance = baseline.get("default_tolerance", 0.40)

    failures = []
    for metric, recorded in baseline["recorded"].items():
        value = results.get(metric)
        if value is None:
            failures.append(f"{metric}: missing from artifact")
            continue
        floor = recorded * (1.0 - tolerance)
        status = "ok" if value >= floor else "FAIL"
        print(
            f"{metric:22s} {value:14,.1f}  "
            f"(recorded {recorded:14,.1f}, floor {floor:14,.1f})  {status}"
        )
        if value < floor:
            failures.append(
                f"{metric}: {value:,.1f} below floor {floor:,.1f} "
                f"(recorded {recorded:,.1f}, tolerance {tolerance:.0%})"
            )

    ratio_floor = baseline.get("min_pooled_over_fresh")
    if ratio_floor is not None:
        ratio = results.get("pooled_over_fresh", 0.0)
        status = "ok" if ratio >= ratio_floor else "FAIL"
        print(f"{'pooled_over_fresh':22s} {ratio:14.2f}  "
              f"(floor {ratio_floor:14.2f})  {status}")
        if ratio < ratio_floor:
            failures.append(
                f"pooled_over_fresh: {ratio:.2f} below floor "
                f"{ratio_floor:.2f}"
            )

    if failures:
        print("\nFIG7 BASELINE CHECK FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nfig7 baseline check passed")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("artifact",
                        help="bench_fig7_webserver.py --json output")
    parser.add_argument("baseline", nargs="?", default=str(DEFAULT_BASELINE))
    parser.add_argument("--tolerance", type=float, default=None,
                        help="allowed fractional drop below recorded rates "
                             "(default: baseline file's default_tolerance)")
    args = parser.parse_args(argv)
    return check(args.artifact, args.baseline, args.tolerance)


if __name__ == "__main__":
    raise SystemExit(main())
